package engbench

import (
	"fmt"
	"strings"
	"testing"

	"lcshortcut/internal/congest"
	"lcshortcut/internal/graph"
	"lcshortcut/internal/scenario"
)

// TestSuiteShape pins the registry-driven suite contract: unique derived
// names, every light scenario buildable, and every new generator family
// present under the broadcast protocol.
func TestSuiteShape(t *testing.T) {
	suite := Scenarios()
	seen := map[string]bool{}
	families := map[string]bool{}
	for _, sc := range suite {
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		proto, rest, ok := strings.Cut(sc.Name, "/")
		if !ok {
			t.Errorf("scenario name %q not of the form proto/family-nN", sc.Name)
			continue
		}
		switch proto {
		case "faulty", "reliable", "raft", "radio":
			// These groups embed the wrapped workload:
			// <group>/<workload>-<family>-nN.
			if _, rest, ok = strings.Cut(rest, "-"); !ok {
				t.Errorf("scenario name %q not of the form %s/workload-family-nN", sc.Name, proto)
				continue
			}
		}
		family, _, ok := strings.Cut(rest, "-n")
		if !ok {
			t.Errorf("scenario name %q lacks the -n<nodes> suffix", sc.Name)
			continue
		}
		if _, ok := scenario.Get(family); !ok {
			t.Errorf("scenario %q names unregistered family %q", sc.Name, family)
		}
		if proto == "broadcast" {
			families[family] = true
		}
		// Build-verify the small graphs only; the tens-of-thousands-node
		// bfsopen instances take seconds to construct and are exercised by
		// the benchmark runs themselves.
		var nodes int
		if _, err := fmt.Sscanf(rest, family+"-n%d", &nodes); err != nil {
			t.Errorf("scenario %q: cannot parse node count: %v", sc.Name, err)
		} else if nodes <= 4096 {
			if g := sc.Graph(); g == nil || g.NumNodes() != nodes || !g.Connected() {
				t.Errorf("scenario %q graph missing, mis-sized or disconnected", sc.Name)
			}
		}
	}
	for _, want := range []string{"ba", "geometric", "regular", "hypercube", "caveman", "surface"} {
		if !families[want] {
			t.Errorf("new family %q has no broadcast engbench scenario", want)
		}
	}
	// The findshortcut construction group measures named variants instead of
	// engines: both walk paths present, and exactly one of Run/Variants set
	// per scenario.
	fsc := 0
	for _, sc := range suite {
		if (sc.Run == nil) == (len(sc.Variants) == 0) {
			t.Errorf("scenario %q must set exactly one of Run and Variants", sc.Name)
		}
		if !strings.HasPrefix(sc.Name, "findshortcut/") {
			continue
		}
		fsc++
		if len(sc.Variants) != 2 || sc.Variants[0].Name != "sequential" || sc.Variants[1].Name != "parallel" {
			t.Errorf("scenario %q: want variants [sequential parallel], got %d", sc.Name, len(sc.Variants))
		}
	}
	if fsc == 0 {
		t.Error("no findshortcut construction scenarios in the suite")
	}
	// The million-node flood is registered Heavy with the channel engine
	// excluded; every other scenario measures the full default engine axis.
	large, ok := func() (Scenario, bool) {
		for _, sc := range suite {
			if sc.Name == "broadcast/ba-n1000000" {
				return sc, true
			}
		}
		return Scenario{}, false
	}()
	if !ok {
		t.Fatal("million-node scenario broadcast/ba-n1000000 missing from the suite")
	}
	if !large.Heavy {
		t.Error("broadcast/ba-n1000000 must be Heavy (single timed iteration, skipped by smoke runs)")
	}
	for _, e := range large.EngineList() {
		if e == congest.EngineChannel {
			t.Error("broadcast/ba-n1000000 must not measure the channel engine")
		}
	}
	if len(large.EngineList()) != 2 {
		t.Errorf("broadcast/ba-n1000000: want 2 engines (event-loop, sharded), got %d", len(large.EngineList()))
	}
}

// TestMeasureSmoke runs the harness end to end on one tiny scenario to keep
// MeasureSuite's accounting wired (full measurements belong to
// cmd/experiments -bench-json and CI's bench gate).
func TestMeasureSmoke(t *testing.T) {
	name, g := graphOf("ring", 64, 1)
	tiny := []Scenario{{
		Name:  "tokenring/" + name,
		Graph: g,
		Run: func(g *graph.Graph) (congest.Stats, error) {
			return congest.Run(g, TokenRingProc(g.NumNodes(), g.NumNodes()), congest.Options{Seed: 1})
		},
	}}
	tiny = append(tiny, findShortcutOn("grid", 36, 1, false))
	rep, err := MeasureSuite(tiny, 1, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 5 {
		t.Fatalf("want 5 measurements (3 engines + 2 variants), got %d", len(rep.Results))
	}
	engines := map[string]bool{}
	for _, m := range rep.Results {
		engines[m.Engine] = true
		if m.NsPerOp <= 0 {
			t.Errorf("%s/%s: empty measurement %+v", m.Scenario, m.Engine, m)
		}
		if m.SimRounds <= 0 && !strings.HasPrefix(m.Scenario, "findshortcut/") {
			t.Errorf("%s/%s: no simulated rounds %+v", m.Scenario, m.Engine, m)
		}
	}
	for _, want := range []string{"channel", "event-loop", "sharded", "sequential", "parallel"} {
		if !engines[want] {
			t.Errorf("missing measurement column %q", want)
		}
	}
	if len(rep.Speedup) == 0 {
		t.Error("no speedup entries")
	}
	// Host metadata is what cmd/benchdiff's mismatch refusal keys on.
	if rep.GoVersion == "" || rep.GoMaxProcs < 1 {
		t.Errorf("report missing host metadata: go_version=%q gomaxprocs=%d", rep.GoVersion, rep.GoMaxProcs)
	}
	wantEngines := []string{"channel", "event-loop", "sharded"}
	if len(rep.Engines) != len(wantEngines) {
		t.Fatalf("report engines = %v, want %v", rep.Engines, wantEngines)
	}
	for i, w := range wantEngines {
		if rep.Engines[i] != w {
			t.Errorf("report engines[%d] = %q, want %q", i, rep.Engines[i], w)
		}
	}
}
