module lcshortcut

go 1.24
