// Package lcshortcut is a from-scratch Go reproduction of
//
//	"Low-Congestion Shortcuts without Embedding",
//	Bernhard Haeupler, Taisuke Izumi, Goran Zuzic — PODC 2016.
//
// The implementation lives under internal/: a CONGEST-model simulator
// (internal/congest), graph/partition/tree substrates (internal/graph,
// internal/gen, internal/partition, internal/tree), the paper's
// tree-restricted shortcut framework with both centralized references and
// round-exact distributed protocols (internal/core, internal/coredist,
// internal/partops, internal/findshort), and the applications: MST
// (internal/mst, Lemma 4), part-parallel aggregation (internal/partagg) and
// (1+ε)-approximate minimum cut via greedy tree packing (internal/mincut).
//
// Every quantitative claim is reproduced by the registry-driven concurrent
// experiment harness (internal/experiments, driven by cmd/experiments).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the per-theorem reproduction results. The benchmarks in
// bench_test.go regenerate every experiment table from the same registry.
package lcshortcut
