package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"lcshortcut/internal/shortcutsvc"
)

// TestServeQueryAndShutdown boots the server on an ephemeral port, drives a
// query through the full HTTP stack, cancels the context (the SIGTERM path),
// and checks the graceful drain: serve returns nil and logs the final stats.
func TestServeQueryAndShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	svc := shortcutsvc.New(shortcutsvc.Config{CacheEntries: 8})
	ctx, cancel := context.WithCancel(context.Background())
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() { done <- serve(ctx, ln, svc, &out, 10*time.Second) }()

	url := "http://" + ln.Addr().String() + "/shortcut"
	body := `{"family":"ring","n":64,"seed":1,"partition":{"kind":"voronoi","parts":4,"seed":1}}`
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /shortcut = %d", resp.StatusCode)
	}
	var payload struct {
		Quality struct {
			Congestion int `json:"congestion"`
		} `json:"quality"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.Quality.Congestion < 1 {
		t.Fatalf("congestion = %d, want >= 1", payload.Quality.Congestion)
	}

	cancel()
	select {
	case err := <-done:
		// The channel receive orders serve's buffer writes before the reads
		// below, so no extra synchronization is needed on out.
		if err != nil {
			t.Fatalf("serve returned %v after graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after context cancellation")
	}
	logged := out.String()
	for _, want := range []string{"listening on", "draining in-flight queries", "served 1 requests"} {
		if !strings.Contains(logged, want) {
			t.Errorf("output missing %q:\n%s", want, logged)
		}
	}
}

// TestRunFlagErrors pins the CLI error contract: bad flags and stray
// positional arguments fail without binding a socket.
func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"stray-positional"},
		{"-cache-entries", "not-a-number"},
	} {
		var out bytes.Buffer
		if err := run(context.Background(), args, &out); err == nil {
			t.Errorf("run(%v) = nil, want error", args)
		}
	}
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-h"}, &out); err != nil {
		t.Errorf("run(-h) = %v, want nil", err)
	}
}

// TestRunListenError pins the error path when the address is unusable.
func TestRunListenError(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-addr", "127.0.0.1:notaport"}, &out); err == nil {
		t.Fatal("run with invalid address = nil, want error")
	}
}
