// Command shortcutd is the long-running shortcut service: an HTTP/JSON
// server around internal/shortcutsvc. POST /shortcut accepts a scenario
// registry reference (family+n+seed) or an uploaded edge list plus a
// partition spec, runs the FindShortcut construction on a bounded worker
// pool, and returns the quality measures; repeated queries are served from
// a content-addressed LRU cache of sealed shortcuts. GET /healthz, /metrics
// and /stats expose liveness and counters.
//
// Examples:
//
//	shortcutd -addr 127.0.0.1:8437
//	curl -s -X POST localhost:8437/shortcut -d \
//	  '{"family":"grid","n":1024,"seed":1,"partition":{"kind":"voronoi","parts":16,"seed":1}}'
//	curl -s localhost:8437/stats
//
// SIGINT/SIGTERM drain in-flight queries before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lcshortcut/internal/shortcutsvc"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "shortcutd: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("shortcutd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:8437", "listen address (host:port; port 0 picks a free port)")
		cacheEntries = fs.Int("cache-entries", 256, "LRU cache capacity (sealed shortcuts retained)")
		maxNodes     = fs.Int("max-nodes", 1<<17, "reject graphs larger than this many nodes")
		workers      = fs.Int("construct-workers", 1, "per-construction walk/seal parallelism (0 = GOMAXPROCS)")
		concurrent   = fs.Int("max-concurrent", 0, "bound on concurrent constructions (0 = GOMAXPROCS)")
		drain        = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight queries")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return fmt.Errorf("invalid arguments")
	}
	if len(fs.Args()) > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	svc := shortcutsvc.New(shortcutsvc.Config{
		CacheEntries:     *cacheEntries,
		MaxNodes:         *maxNodes,
		ConstructWorkers: *workers,
		MaxConcurrent:    *concurrent,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	return serve(ctx, ln, svc, out, *drain)
}

// serve runs the HTTP server on ln until ctx is cancelled, then drains
// in-flight queries within the drain budget. Factored from run so tests can
// inject their own listener and cancellation.
func serve(ctx context.Context, ln net.Listener, svc *shortcutsvc.Service, out io.Writer, drain time.Duration) error {
	srv := &http.Server{Handler: svc.Handler()}
	fmt.Fprintf(out, "shortcutd listening on %s\n", ln.Addr())
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "shortcutd: draining in-flight queries")
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	st := svc.Stats()
	fmt.Fprintf(out, "shortcutd: served %d requests (%d hits, %d misses, %d coalesced, %d errors), cache %d entries\n",
		st.Requests, st.Hits, st.Misses, st.Coalesced, st.Errors, st.CacheSize)
	return nil
}
