// Command graphgen generates a graph from the same family specs as
// shortcutctl and prints either summary statistics or a Graphviz DOT dump.
//
//	graphgen -graph torus:8x8
//	graphgen -graph lowerbound:4x8 -dot > lb.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"lcshortcut/internal/gen"
	"lcshortcut/internal/graph"
	"lcshortcut/internal/tree"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		spec    = flag.String("graph", "grid:8x8", "graph family spec (see shortcutctl -help)")
		dot     = flag.Bool("dot", false, "emit Graphviz DOT instead of statistics")
		weights = flag.Int64("weights", 0, "assign random weights in [1,W] (0 = unit)")
		seed    = flag.Int64("seed", 1, "weight seed")
	)
	flag.Parse()
	g, err := build(*spec)
	if err != nil {
		return err
	}
	if *weights > 0 {
		gen.WithRandomWeights(g, *seed, *weights)
	}
	if *dot {
		emitDOT(g)
		return nil
	}
	tr := tree.BFSTree(g, 0)
	fmt.Printf("spec:       %s\n", *spec)
	fmt.Printf("nodes:      %d\n", g.NumNodes())
	fmt.Printf("edges:      %d\n", g.NumEdges())
	fmt.Printf("connected:  %v\n", g.Connected())
	fmt.Printf("bfs height: %d (from node 0)\n", tr.Height())
	fmt.Printf("diam >=:    %d (double sweep)\n", g.ApproxDiameter(0))
	degSum, maxDeg := 0, 0
	for v := 0; v < g.NumNodes(); v++ {
		d := g.Degree(v)
		degSum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	fmt.Printf("avg degree: %.2f  max degree: %d\n", float64(degSum)/float64(g.NumNodes()), maxDeg)
	return nil
}

func build(spec string) (*graph.Graph, error) {
	// Reuse shortcutctl's parser conventions with a tiny local copy to keep
	// the binaries independent.
	var w, h, x int
	if n, _ := fmt.Sscanf(spec, "grid:%dx%d", &w, &h); n == 2 {
		return gen.Grid(w, h), nil
	}
	if n, _ := fmt.Sscanf(spec, "torus:%dx%d", &w, &h); n == 2 {
		return gen.Torus(w, h), nil
	}
	if n, _ := fmt.Sscanf(spec, "handled:%dx%dx%d", &w, &h, &x); n == 3 {
		return gen.HandledGrid(w, h, x), nil
	}
	if n, _ := fmt.Sscanf(spec, "lowerbound:%dx%d", &w, &h); n == 2 {
		return gen.LowerBound(w, h), nil
	}
	if n, _ := fmt.Sscanf(spec, "ring:%d", &w); n == 1 {
		return gen.Ring(w), nil
	}
	if n, _ := fmt.Sscanf(spec, "tree:%d", &w); n == 1 {
		return gen.RandomTree(w, 1), nil
	}
	if n, _ := fmt.Sscanf(spec, "pathpower:%d,%d", &w, &x); n == 2 {
		return gen.PathPower(w, x), nil
	}
	var p float64
	if n, _ := fmt.Sscanf(spec, "er:%d,%f", &w, &p); n == 2 {
		return gen.ErdosRenyi(w, p, 1), nil
	}
	return nil, fmt.Errorf("unknown graph spec %q", spec)
}

func emitDOT(g *graph.Graph) {
	fmt.Println("graph G {")
	for _, e := range g.Edges() {
		fmt.Printf("  %d -- %d [label=%d];\n", e.U, e.V, e.W)
	}
	fmt.Println("}")
}
