// Command graphgen generates a graph — either from the central scenario
// registry (-family) or from the legacy free-form spec (-graph) — and prints
// summary statistics or a Graphviz DOT dump.
//
//	graphgen -list-families
//	graphgen -family surface -n 1024
//	graphgen -family ba -n 4096 -seed 3 -dot > ba.dot
//	graphgen -family ba -n 1000000 -seed 7 -large   # chunked streaming CSR build
//	graphgen -graph torus:8x8
//	graphgen -graph lowerbound:4x8 -dot > lb.dot
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lcshortcut/internal/gen"
	"lcshortcut/internal/graph"
	"lcshortcut/internal/scenario"
	"lcshortcut/internal/tree"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		family  = flag.String("family", "", "scenario-registry family name (see -list-families); overrides -graph")
		n       = flag.Int("n", 1024, "requested size for -family (node count; families round to their nearest realizable size)")
		list    = flag.Bool("list-families", false, "list the scenario registry (name, tags, sizes, paper relevance) and exit")
		spec    = flag.String("graph", "grid:8x8", "legacy graph family spec (see shortcutctl -help)")
		dot     = flag.Bool("dot", false, "emit Graphviz DOT instead of statistics")
		large   = flag.Bool("large", false, "build through the chunked streaming CSR path (int64 offsets, no dedup map) — the million-node constructor; requires -family")
		weights = flag.Int64("weights", 0, "assign random weights in [1,W] (0 = unit)")
		seed    = flag.Int64("seed", 1, "build seed for -family and weight seed")
	)
	flag.Parse()
	if *list {
		listFamilies()
		return nil
	}
	var g *graph.Graph
	var err error
	label := *spec
	if *family != "" {
		s, ok := scenario.Get(*family)
		if !ok {
			return fmt.Errorf("unknown family %q (run -list-families; have %s)", *family, strings.Join(scenario.Names(), ", "))
		}
		if *large {
			g = s.BuildLarge(*n, *seed)
			label = fmt.Sprintf("%s (n=%d, seed=%d, streamed)", s.Name, *n, *seed)
		} else {
			g = s.Build(*n, *seed)
			label = fmt.Sprintf("%s (n=%d, seed=%d)", s.Name, *n, *seed)
		}
	} else if *large {
		return fmt.Errorf("-large requires -family (the streaming path is registry-driven)")
	} else {
		g, err = build(*spec)
		if err != nil {
			return err
		}
	}
	if *weights > 0 {
		g = gen.WithRandomWeights(g, *seed, *weights)
	}
	if *dot {
		emitDOT(g)
		return nil
	}
	tr := tree.BFSTree(g, 0)
	fmt.Printf("spec:       %s\n", label)
	fmt.Printf("nodes:      %d\n", g.NumNodes())
	fmt.Printf("edges:      %d\n", g.NumEdges())
	fmt.Printf("connected:  %v\n", g.Connected())
	fmt.Printf("bfs height: %d (from node 0)\n", tr.Height())
	fmt.Printf("diam >=:    %d (double sweep)\n", g.ApproxDiameter(0))
	degSum, maxDeg := 0, 0
	for v := 0; v < g.NumNodes(); v++ {
		d := g.Degree(v)
		degSum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	fmt.Printf("avg degree: %.2f  max degree: %d\n", float64(degSum)/float64(g.NumNodes()), maxDeg)
	return nil
}

// listFamilies prints the scenario registry as an aligned table.
func listFamilies() {
	fmt.Printf("%-12s %-32s %-14s %s\n", "FAMILY", "TAGS", "SIZES", "PAPER RELEVANCE")
	for _, s := range scenario.All() {
		sizes := make([]string, len(s.Sizes))
		for i, n := range s.Sizes {
			sizes[i] = fmt.Sprint(n)
		}
		fmt.Printf("%-12s %-32s %-14s %s\n", s.Name, strings.Join(s.Tags, ","), strings.Join(sizes, ","), s.Ref)
	}
}

func build(spec string) (*graph.Graph, error) {
	// Reuse shortcutctl's parser conventions with a tiny local copy to keep
	// the binaries independent.
	var w, h, x int
	if n, _ := fmt.Sscanf(spec, "grid:%dx%d", &w, &h); n == 2 {
		return gen.Grid(w, h), nil
	}
	if n, _ := fmt.Sscanf(spec, "torus:%dx%d", &w, &h); n == 2 {
		return gen.Torus(w, h), nil
	}
	if n, _ := fmt.Sscanf(spec, "handled:%dx%dx%d", &w, &h, &x); n == 3 {
		return gen.HandledGrid(w, h, x), nil
	}
	if n, _ := fmt.Sscanf(spec, "surface:%dx%dx%d", &w, &h, &x); n == 3 {
		return gen.SurfaceMesh(w, h, x, 2), nil
	}
	if n, _ := fmt.Sscanf(spec, "lowerbound:%dx%d", &w, &h); n == 2 {
		return gen.LowerBound(w, h), nil
	}
	if n, _ := fmt.Sscanf(spec, "ring:%d", &w); n == 1 {
		return gen.Ring(w), nil
	}
	if n, _ := fmt.Sscanf(spec, "tree:%d", &w); n == 1 {
		return gen.RandomTree(w, 1), nil
	}
	if n, _ := fmt.Sscanf(spec, "pathpower:%d,%d", &w, &x); n == 2 {
		return gen.PathPower(w, x), nil
	}
	if n, _ := fmt.Sscanf(spec, "hypercube:%d", &w); n == 1 {
		return gen.Hypercube(w), nil
	}
	if n, _ := fmt.Sscanf(spec, "caveman:%dx%d", &w, &h); n == 2 {
		return gen.Caveman(w, h), nil
	}
	var p float64
	if n, _ := fmt.Sscanf(spec, "er:%d,%f", &w, &p); n == 2 {
		return gen.ErdosRenyi(w, p, 1), nil
	}
	return nil, fmt.Errorf("unknown graph spec %q", spec)
}

func emitDOT(g *graph.Graph) {
	fmt.Println("graph G {")
	for _, e := range g.Edges() {
		fmt.Printf("  %d -- %d [label=%d];\n", e.U, e.V, e.W)
	}
	fmt.Println("}")
}
