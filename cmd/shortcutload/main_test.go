package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lcshortcut/internal/shortcutsvc"
)

// startServer boots an in-process shortcutd-equivalent and returns its
// host:port (what the -addr flag expects).
func startServer(t *testing.T) string {
	t.Helper()
	svc := shortcutsvc.New(shortcutsvc.Config{CacheEntries: 64})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

// TestLoadAgainstLiveService runs the full generator against a live service
// and checks the report: zipf skew over a repeated universe must produce
// cache hits, and the JSON report must round-trip.
func TestLoadAgainstLiveService(t *testing.T) {
	addr := startServer(t)
	jsonPath := filepath.Join(t.TempDir(), "report.json")
	var out bytes.Buffer
	args := []string{
		"-addr", addr,
		"-clients", "4",
		"-requests", "80",
		"-families", "ring,er-sparse",
		"-sizes", "64,128",
		"-seeds", "2",
		"-parts", "4",
		"-min-hit-ratio", "0.3",
		"-json", jsonPath,
	}
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v) = %v\n%s", args, err, out.String())
	}
	for _, want := range []string{"hit ratio", "latency p50"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 80 {
		t.Errorf("report requests = %d, want 80", rep.Requests)
	}
	if rep.Errors != 0 {
		t.Errorf("report errors = %d, want 0", rep.Errors)
	}
	if rep.HitRatio < 0.3 {
		t.Errorf("report hit ratio = %.3f, want >= 0.3", rep.HitRatio)
	}
	if rep.Universe != 8 {
		t.Errorf("report universe = %d, want 8 (2 families x 2 sizes x 2 seeds)", rep.Universe)
	}
}

// TestMinHitRatioFailure pins the exit contract: an unreachable hit-ratio
// floor turns an otherwise clean run into an error.
func TestMinHitRatioFailure(t *testing.T) {
	addr := startServer(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", addr,
		"-clients", "2",
		"-requests", "10",
		"-families", "ring",
		"-sizes", "32,64",
		"-seeds", "1",
		"-parts", "4",
		"-min-hit-ratio", "1.1", // unreachable: the first query of any key is a miss
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "hit ratio") {
		t.Fatalf("run with -min-hit-ratio 1.1 = %v, want hit-ratio error", err)
	}
}

// TestRequestErrorsFailTheRun pins that HTTP-level failures (an unknown
// family is a 400) produce a non-zero exit.
func TestRequestErrorsFailTheRun(t *testing.T) {
	addr := startServer(t)
	var out bytes.Buffer
	err := run([]string{
		"-addr", addr,
		"-clients", "1",
		"-requests", "4",
		"-families", "no-such-family",
		"-sizes", "32,64",
		"-seeds", "1",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "failed") {
		t.Fatalf("run against unknown family = %v, want request-failure error", err)
	}
}

// TestFlagValidation pins the argument error paths.
func TestFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"stray"},
		{"-zipf", "0.5"},
		{"-clients", "0"},
		{"-sizes", "x"},
		{"-sizes", "64", "-families", "ring", "-seeds", "1"}, // universe of 1
		{"-seeds", "0"},
		{"-families", ",", "-sizes", "64"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) = nil, want error", args)
		}
	}
	var out bytes.Buffer
	if err := run([]string{"-h"}, &out); err != nil {
		t.Errorf("run(-h) = %v, want nil", err)
	}
}
