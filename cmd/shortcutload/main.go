// Command shortcutload drives a running shortcutd with a zipf-skewed query
// mix and reports latency percentiles and the cache hit ratio. It is the
// load half of the server-smoke CI job: boot shortcutd, point shortcutload
// at it, and assert the hit ratio the content-addressed cache should
// deliver under skewed repetition.
//
// Example:
//
//	shortcutload -addr 127.0.0.1:8437 -clients 8 -requests 400 -min-hit-ratio 0.5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "shortcutload: %v\n", err)
		os.Exit(1)
	}
}

// Report is the machine-readable summary (-json writes it as JSON).
type Report struct {
	Addr          string  `json:"addr"`
	Universe      int     `json:"universe"`
	Clients       int     `json:"clients"`
	Requests      int     `json:"requests"`
	ZipfS         float64 `json:"zipf_s"`
	Errors        int     `json:"errors"`
	HitRatio      float64 `json:"hit_ratio"`
	P50Micros     float64 `json:"p50_us"`
	P95Micros     float64 `json:"p95_us"`
	P99Micros     float64 `json:"p99_us"`
	HitP50Micros  float64 `json:"hit_p50_us"`
	ElapsedMillis float64 `json:"elapsed_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("shortcutload", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8437", "shortcutd address (host:port)")
		clients  = fs.Int("clients", 8, "concurrent client goroutines")
		requests = fs.Int("requests", 400, "total requests across all clients")
		zipfS    = fs.Float64("zipf", 1.2, "zipf skew parameter s (> 1)")
		families = fs.String("families", "grid,er-sparse,ba", "comma-separated scenario families")
		sizes    = fs.String("sizes", "256,1024", "comma-separated graph sizes")
		seeds    = fs.Int("seeds", 2, "seeds per (family, size) pair")
		parts    = fs.Int("parts", 16, "Voronoi parts per partition")
		c        = fs.Int("c", 0, "congestion parameter C (0 = doubling search)")
		b        = fs.Int("b", 0, "block parameter B (0 with C=0 = doubling search)")
		minHit   = fs.Float64("min-hit-ratio", 0, "fail if the cache hit ratio is below this")
		jsonOut  = fs.String("json", "", "write the JSON report to this file ('-' = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return nil
		}
		return fmt.Errorf("invalid arguments")
	}
	if len(fs.Args()) > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *clients < 1 || *requests < 1 {
		return fmt.Errorf("-clients and -requests must be positive")
	}
	if *zipfS <= 1 {
		return fmt.Errorf("-zipf must be > 1 (got %g)", *zipfS)
	}

	universe, err := buildUniverse(*families, *sizes, *seeds, *parts, *c, *b)
	if err != nil {
		return err
	}

	url := "http://" + *addr + "/shortcut"
	type obs struct {
		lat time.Duration
		hit bool
		err bool
	}
	perClient := make([][]obs, *clients)
	base, extra := *requests / *clients, *requests%*clients
	start := time.Now()
	var wg sync.WaitGroup
	for cl := 0; cl < *clients; cl++ {
		count := base
		if cl < extra {
			count++
		}
		wg.Add(1)
		go func(cl, count int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7000 + cl)))
			zipf := rand.NewZipf(rng, *zipfS, 1, uint64(len(universe)-1))
			client := &http.Client{Timeout: 2 * time.Minute}
			for k := 0; k < count; k++ {
				body := universe[int(zipf.Uint64())]
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", strings.NewReader(body))
				o := obs{lat: time.Since(t0)}
				if err != nil {
					o.err = true
				} else {
					io.Copy(io.Discard, resp.Body)
					xc := resp.Header.Get("X-Cache")
					o.hit = xc == "hit" || xc == "coalesced"
					o.err = resp.StatusCode != http.StatusOK
					resp.Body.Close()
				}
				perClient[cl] = append(perClient[cl], o)
			}
		}(cl, count)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lats, hitLats []time.Duration
	hits, errs, total := 0, 0, 0
	for _, list := range perClient {
		for _, o := range list {
			total++
			if o.err {
				errs++
				continue
			}
			lats = append(lats, o.lat)
			if o.hit {
				hits++
				hitLats = append(hitLats, o.lat)
			}
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	sort.Slice(hitLats, func(i, j int) bool { return hitLats[i] < hitLats[j] })
	hitRatio := 0.0
	if total > 0 {
		hitRatio = float64(hits) / float64(total)
	}
	report := Report{
		Addr:          *addr,
		Universe:      len(universe),
		Clients:       *clients,
		Requests:      total,
		ZipfS:         *zipfS,
		Errors:        errs,
		HitRatio:      hitRatio,
		P50Micros:     percentileUS(lats, 0.50),
		P95Micros:     percentileUS(lats, 0.95),
		P99Micros:     percentileUS(lats, 0.99),
		HitP50Micros:  percentileUS(hitLats, 0.50),
		ElapsedMillis: float64(elapsed.Nanoseconds()) / 1e6,
		ThroughputRPS: float64(total) / elapsed.Seconds(),
	}

	fmt.Fprintf(out, "shortcutload: %d requests (%d clients, universe %d, zipf %.2f) in %.0f ms\n",
		report.Requests, report.Clients, report.Universe, report.ZipfS, report.ElapsedMillis)
	fmt.Fprintf(out, "  hit ratio %.3f, errors %d, throughput %.0f req/s\n",
		report.HitRatio, report.Errors, report.ThroughputRPS)
	fmt.Fprintf(out, "  latency p50 %.0f us, p95 %.0f us, p99 %.0f us (cache-hit p50 %.0f us)\n",
		report.P50Micros, report.P95Micros, report.P99Micros, report.HitP50Micros)

	if *jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			if _, err := out.Write(data); err != nil {
				return err
			}
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			return err
		}
	}

	if errs > 0 {
		return fmt.Errorf("%d of %d requests failed", errs, total)
	}
	if hitRatio < *minHit {
		return fmt.Errorf("hit ratio %.3f below required %.3f", hitRatio, *minHit)
	}
	return nil
}

// buildUniverse pre-marshals the request bodies: families x sizes x seeds,
// each with a Voronoi partition seeded like the graph.
func buildUniverse(families, sizes string, seeds, parts, c, b int) ([]string, error) {
	if seeds < 1 {
		return nil, fmt.Errorf("-seeds must be positive")
	}
	var szs []int
	for _, f := range strings.Split(sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("invalid size %q", f)
		}
		szs = append(szs, n)
	}
	var universe []string
	for _, fam := range strings.Split(families, ",") {
		fam = strings.TrimSpace(fam)
		if fam == "" {
			return nil, fmt.Errorf("empty family in -families")
		}
		for _, n := range szs {
			for seed := 1; seed <= seeds; seed++ {
				universe = append(universe, fmt.Sprintf(
					`{"family":%q,"n":%d,"seed":%d,"c":%d,"b":%d,"partition":{"kind":"voronoi","parts":%d,"seed":%d}}`,
					fam, n, seed, c, b, parts, seed))
			}
		}
	}
	if len(universe) < 2 {
		return nil, fmt.Errorf("query universe needs at least 2 entries (got %d)", len(universe))
	}
	return universe, nil
}

func percentileUS(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx].Nanoseconds()) / 1e3
}
