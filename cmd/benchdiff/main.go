// Command benchdiff is the CI benchmark-regression gate: it compares a
// fresh engine-benchmark report (cmd/experiments -bench-json) against the
// committed baseline BENCH_engine.json and fails on a >30% ns/op regression
// or any steady-state allocation increase (beyond a small relative
// measurement tolerance — see -alloc-frac) on a matching (scenario, engine)
// measurement.
//
//	go run ./cmd/experiments -short -bench-json /tmp/bench_new.json
//	go run ./cmd/benchdiff -baseline BENCH_engine.json -candidate /tmp/bench_new.json
//
// Measurements present only in the candidate (a new scenario without a
// recorded baseline) or only in the baseline (heavy scenarios skipped by a
// short run) are reported but do not fail the gate; the committed baseline
// is regenerated with a full `-bench-json BENCH_engine.json` run whenever
// the scenario suite changes.
//
// Absolute ns/op only transfers between equal recording environments, so the
// gate refuses outright when the two reports disagree on GOMAXPROCS or the
// Go release (major.minor): a failing comparison across hosts means
// "re-record the baseline in the gating environment", not "regression".
// -allow-host-mismatch downgrades the refusal to a warning for local
// exploration.
//
// A second, baseline-free mode gates the sharded engine's scaling claim:
//
//	go run ./cmd/benchdiff -candidate /tmp/large.json -require-faster sharded:event-loop -min-n 100000
//
// fails unless, on every candidate scenario with at least -min-n nodes
// (parsed from the -n<nodes> name suffix), the first engine's ns/op beats
// the second's. The nightly large-n CI job runs it on the million-node
// flood measured on a multi-core runner.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"lcshortcut/internal/engbench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		baselinePath  = fs.String("baseline", "BENCH_engine.json", "committed baseline report `path`")
		candidatePath = fs.String("candidate", "", "fresh report `path` to gate (required)")
		maxRegress    = fs.Float64("max-regress", 0.30, "maximum tolerated ns/op regression (fraction over baseline)")
		allocSlack    = fs.Int64("alloc-slack", 0, "absolute tolerated allocs/op increase")
		allocFrac     = fs.Float64("alloc-frac", 0.02, "relative allocs/op measurement tolerance (the legacy channel engine's ~1M allocs/op carry ~1% GC-timing noise; a real steady-state regression adds at least one alloc per round, far above this)")
		allowMismatch = fs.Bool("allow-host-mismatch", false, "compare reports recorded under different GOMAXPROCS or Go releases anyway (warning instead of refusal)")
		requireFaster = fs.String("require-faster", "", "baseline-free mode: `fast:slow` engine pair — fail unless fast beats slow on every candidate scenario with at least -min-n nodes")
		minN          = fs.Int("min-n", 100000, "with -require-faster, gate only scenarios of at least this many nodes (from the -n<nodes> name suffix)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		// The FlagSet already reported the problem and usage on stderr.
		return fmt.Errorf("invalid arguments")
	}
	if len(fs.Args()) > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *candidatePath == "" {
		return fmt.Errorf("-candidate is required")
	}
	cand, err := readReport(*candidatePath)
	if err != nil {
		return err
	}
	if *requireFaster != "" {
		return runRequireFaster(out, cand, *requireFaster, *minN)
	}
	base, err := readReport(*baselinePath)
	if err != nil {
		return err
	}
	// Absolute ns/op only transfers between equal environments: a different
	// core count or Go release makes every comparison below meaningless, so
	// a mismatch is a hard refusal (the baseline must be re-recorded in the
	// gating environment), downgradeable to a warning for local exploration.
	if base.GoMaxProcs != cand.GoMaxProcs || goMinor(base.GoVersion) != goMinor(cand.GoVersion) {
		msg := fmt.Sprintf(
			"baseline recorded on %s gomaxprocs=%d, candidate on %s gomaxprocs=%d — absolute ns/op comparisons across environments are unreliable; regenerate the baseline with `go run ./cmd/experiments -bench-json %s` in the gating environment",
			base.GoVersion, base.GoMaxProcs, cand.GoVersion, cand.GoMaxProcs, *baselinePath)
		if !*allowMismatch {
			return fmt.Errorf("recording environments differ: %s (or pass -allow-host-mismatch)", msg)
		}
		fmt.Fprintf(os.Stderr, "benchdiff: WARNING: %s\n", msg)
	}
	type key struct{ scenario, engine string }
	baseline := make(map[key]engbench.Measurement, len(base.Results))
	for _, m := range base.Results {
		baseline[key{m.Scenario, m.Engine}] = m
	}
	var failures []string
	matched := 0
	fmt.Fprintf(out, "%-28s %-10s %14s %14s %8s %10s\n", "SCENARIO", "ENGINE", "BASE ns/op", "CAND ns/op", "Δ%", "allocs")
	for _, m := range cand.Results {
		b, ok := baseline[key{m.Scenario, m.Engine}]
		if !ok {
			fmt.Fprintf(out, "%-28s %-10s %14s %14d %8s %10d  (no baseline — add one with a full -bench-json run)\n",
				m.Scenario, m.Engine, "-", m.NsPerOp, "-", m.AllocsPerOp)
			continue
		}
		delete(baseline, key{m.Scenario, m.Engine})
		matched++
		delta := 100 * (float64(m.NsPerOp)/float64(b.NsPerOp) - 1)
		verdict := ""
		if float64(m.NsPerOp) > float64(b.NsPerOp)*(1+*maxRegress) {
			verdict = fmt.Sprintf("ns/op regressed %.1f%% (> %.0f%% tolerated)", delta, 100**maxRegress)
		}
		allocTol := *allocSlack
		if rel := int64(float64(b.AllocsPerOp) * *allocFrac); rel > allocTol {
			allocTol = rel
		}
		if m.AllocsPerOp > b.AllocsPerOp+allocTol {
			if verdict != "" {
				verdict += "; "
			}
			verdict += fmt.Sprintf("allocs/op %d -> %d (steady-state alloc increase)", b.AllocsPerOp, m.AllocsPerOp)
		}
		mark := ""
		if verdict != "" {
			failures = append(failures, fmt.Sprintf("%s/%s: %s", m.Scenario, m.Engine, verdict))
			mark = "  FAIL"
		}
		fmt.Fprintf(out, "%-28s %-10s %14d %14d %+7.1f%% %5d->%-4d%s\n",
			m.Scenario, m.Engine, b.NsPerOp, m.NsPerOp, delta, b.AllocsPerOp, m.AllocsPerOp, mark)
	}
	var unmeasured []key
	for k := range baseline {
		unmeasured = append(unmeasured, k)
	}
	sort.Slice(unmeasured, func(i, j int) bool {
		if unmeasured[i].scenario != unmeasured[j].scenario {
			return unmeasured[i].scenario < unmeasured[j].scenario
		}
		return unmeasured[i].engine < unmeasured[j].engine
	})
	for _, k := range unmeasured {
		fmt.Fprintf(out, "%-28s %-10s  (baseline only — not measured by this run)\n", k.scenario, k.engine)
	}
	if matched == 0 {
		return fmt.Errorf("no (scenario, engine) measurement matched the baseline — suite renamed without regenerating %s?", *baselinePath)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchdiff: FAIL %s\n", f)
		}
		return fmt.Errorf("%d regression(s) against %s", len(failures), *baselinePath)
	}
	fmt.Fprintf(out, "benchdiff: %d measurements within budget (ns/op +%.0f%%, allocs +max(%d, %.0f%%))\n", matched, 100**maxRegress, *allocSlack, 100**allocFrac)
	return nil
}

// goMinor reduces a runtime.Version() string to its major.minor release
// ("go1.24.3" -> "go1.24"): patch releases don't shift benchmark numbers,
// toolchain releases can.
func goMinor(v string) string {
	if i := strings.Index(v, "."); i >= 0 {
		if j := strings.Index(v[i+1:], "."); j >= 0 {
			return v[:i+1+j]
		}
	}
	return v
}

// dash renders a possibly-missing ns/op cell.
func dash(v int64, ok bool) string {
	if !ok {
		return "-"
	}
	return strconv.FormatInt(v, 10)
}

// scenarioNodes parses the node count from a scenario name's trailing
// -n<nodes> suffix ("broadcast/ba-n1000000" -> 1000000); ok is false for
// names without one.
var nodeSuffix = regexp.MustCompile(`-n(\d+)$`)

func scenarioNodes(name string) (int, bool) {
	m := nodeSuffix.FindStringSubmatch(name)
	if m == nil {
		return 0, false
	}
	n, err := strconv.Atoi(m[1])
	return n, err == nil
}

// runRequireFaster is the baseline-free scaling gate: on every candidate
// scenario with at least minN nodes, the fast engine's ns/op must beat the
// slow engine's. A qualifying scenario missing either engine's measurement
// fails too — a gate that silently skips the row it exists for is no gate.
func runRequireFaster(out io.Writer, cand *engbench.Report, pair string, minN int) error {
	fast, slow, ok := strings.Cut(pair, ":")
	if !ok || fast == "" || slow == "" {
		return fmt.Errorf("-require-faster wants fast:slow engine names, got %q", pair)
	}
	perScenario := make(map[string]map[string]int64)
	var names []string
	for _, m := range cand.Results {
		n, ok := scenarioNodes(m.Scenario)
		if !ok || n < minN {
			continue
		}
		if perScenario[m.Scenario] == nil {
			perScenario[m.Scenario] = make(map[string]int64)
			names = append(names, m.Scenario)
		}
		perScenario[m.Scenario][m.Engine] = m.NsPerOp
	}
	if len(names) == 0 {
		return fmt.Errorf("no candidate scenario has >= %d nodes — nothing to gate", minN)
	}
	sort.Strings(names)
	var failures []string
	fmt.Fprintf(out, "%-28s %14s %14s %8s\n", "SCENARIO", fast+" ns/op", slow+" ns/op", "speedup")
	for _, name := range names {
		engines := perScenario[name]
		f, fok := engines[fast]
		s, sok := engines[slow]
		switch {
		case !fok || !sok:
			missing := fast
			if fok {
				missing = slow
			}
			failures = append(failures, fmt.Sprintf("%s: no %q measurement", name, missing))
			fmt.Fprintf(out, "%-28s %14s %14s %8s  FAIL (missing %s)\n", name, dash(f, fok), dash(s, sok), "-", missing)
		case f >= s:
			failures = append(failures, fmt.Sprintf("%s: %s (%d ns/op) not faster than %s (%d ns/op)", name, fast, f, slow, s))
			fmt.Fprintf(out, "%-28s %14d %14d %7.2fx  FAIL\n", name, f, s, float64(s)/float64(f))
		default:
			fmt.Fprintf(out, "%-28s %14d %14d %7.2fx\n", name, f, s, float64(s)/float64(f))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchdiff: FAIL %s\n", f)
		}
		return fmt.Errorf("%d scenario(s) where %s does not beat %s at n >= %d (gomaxprocs=%d)", len(failures), fast, slow, minN, cand.GoMaxProcs)
	}
	fmt.Fprintf(out, "benchdiff: %s faster than %s on all %d scenario(s) with n >= %d (gomaxprocs=%d)\n", fast, slow, len(names), minN, cand.GoMaxProcs)
	return nil
}

func readReport(path string) (*engbench.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep engbench.Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("%s contains no measurements", path)
	}
	return &rep, nil
}
