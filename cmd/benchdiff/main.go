// Command benchdiff is the CI benchmark-regression gate: it compares a
// fresh engine-benchmark report (cmd/experiments -bench-json) against the
// committed baseline BENCH_engine.json and fails on a >30% ns/op regression
// or any steady-state allocation increase (beyond a small relative
// measurement tolerance — see -alloc-frac) on a matching (scenario, engine)
// measurement.
//
//	go run ./cmd/experiments -short -bench-json /tmp/bench_new.json
//	go run ./cmd/benchdiff -baseline BENCH_engine.json -candidate /tmp/bench_new.json
//
// Measurements present only in the candidate (a new scenario without a
// recorded baseline) or only in the baseline (heavy scenarios skipped by a
// short run) are reported but do not fail the gate; the committed baseline
// is regenerated with a full `-bench-json BENCH_engine.json` run whenever
// the scenario suite changes.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"lcshortcut/internal/engbench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		baselinePath  = fs.String("baseline", "BENCH_engine.json", "committed baseline report `path`")
		candidatePath = fs.String("candidate", "", "fresh report `path` to gate (required)")
		maxRegress    = fs.Float64("max-regress", 0.30, "maximum tolerated ns/op regression (fraction over baseline)")
		allocSlack    = fs.Int64("alloc-slack", 0, "absolute tolerated allocs/op increase")
		allocFrac     = fs.Float64("alloc-frac", 0.02, "relative allocs/op measurement tolerance (the legacy channel engine's ~1M allocs/op carry ~1% GC-timing noise; a real steady-state regression adds at least one alloc per round, far above this)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		// The FlagSet already reported the problem and usage on stderr.
		return fmt.Errorf("invalid arguments")
	}
	if len(fs.Args()) > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *candidatePath == "" {
		return fmt.Errorf("-candidate is required")
	}
	base, err := readReport(*baselinePath)
	if err != nil {
		return err
	}
	cand, err := readReport(*candidatePath)
	if err != nil {
		return err
	}
	// Absolute ns/op only transfers between equal environments; when the
	// candidate was measured on different hardware or a different Go, say so
	// loudly — a failing gate on a mismatched host means "re-record the
	// baseline in the gating environment", not necessarily "regression".
	if base.GoMaxProcs != cand.GoMaxProcs || base.GoVersion != cand.GoVersion {
		fmt.Fprintf(os.Stderr,
			"benchdiff: WARNING: baseline recorded on %s gomaxprocs=%d, candidate on %s gomaxprocs=%d — absolute ns/op comparisons across environments are unreliable; regenerate the baseline with `go run ./cmd/experiments -bench-json %s` on this host if the gate misfires\n",
			base.GoVersion, base.GoMaxProcs, cand.GoVersion, cand.GoMaxProcs, *baselinePath)
	}
	type key struct{ scenario, engine string }
	baseline := make(map[key]engbench.Measurement, len(base.Results))
	for _, m := range base.Results {
		baseline[key{m.Scenario, m.Engine}] = m
	}
	var failures []string
	matched := 0
	fmt.Fprintf(out, "%-28s %-10s %14s %14s %8s %10s\n", "SCENARIO", "ENGINE", "BASE ns/op", "CAND ns/op", "Δ%", "allocs")
	for _, m := range cand.Results {
		b, ok := baseline[key{m.Scenario, m.Engine}]
		if !ok {
			fmt.Fprintf(out, "%-28s %-10s %14s %14d %8s %10d  (no baseline — add one with a full -bench-json run)\n",
				m.Scenario, m.Engine, "-", m.NsPerOp, "-", m.AllocsPerOp)
			continue
		}
		delete(baseline, key{m.Scenario, m.Engine})
		matched++
		delta := 100 * (float64(m.NsPerOp)/float64(b.NsPerOp) - 1)
		verdict := ""
		if float64(m.NsPerOp) > float64(b.NsPerOp)*(1+*maxRegress) {
			verdict = fmt.Sprintf("ns/op regressed %.1f%% (> %.0f%% tolerated)", delta, 100**maxRegress)
		}
		allocTol := *allocSlack
		if rel := int64(float64(b.AllocsPerOp) * *allocFrac); rel > allocTol {
			allocTol = rel
		}
		if m.AllocsPerOp > b.AllocsPerOp+allocTol {
			if verdict != "" {
				verdict += "; "
			}
			verdict += fmt.Sprintf("allocs/op %d -> %d (steady-state alloc increase)", b.AllocsPerOp, m.AllocsPerOp)
		}
		mark := ""
		if verdict != "" {
			failures = append(failures, fmt.Sprintf("%s/%s: %s", m.Scenario, m.Engine, verdict))
			mark = "  FAIL"
		}
		fmt.Fprintf(out, "%-28s %-10s %14d %14d %+7.1f%% %5d->%-4d%s\n",
			m.Scenario, m.Engine, b.NsPerOp, m.NsPerOp, delta, b.AllocsPerOp, m.AllocsPerOp, mark)
	}
	var unmeasured []key
	for k := range baseline {
		unmeasured = append(unmeasured, k)
	}
	sort.Slice(unmeasured, func(i, j int) bool {
		if unmeasured[i].scenario != unmeasured[j].scenario {
			return unmeasured[i].scenario < unmeasured[j].scenario
		}
		return unmeasured[i].engine < unmeasured[j].engine
	})
	for _, k := range unmeasured {
		fmt.Fprintf(out, "%-28s %-10s  (baseline only — not measured by this run)\n", k.scenario, k.engine)
	}
	if matched == 0 {
		return fmt.Errorf("no (scenario, engine) measurement matched the baseline — suite renamed without regenerating %s?", *baselinePath)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchdiff: FAIL %s\n", f)
		}
		return fmt.Errorf("%d regression(s) against %s", len(failures), *baselinePath)
	}
	fmt.Fprintf(out, "benchdiff: %d measurements within budget (ns/op +%.0f%%, allocs +max(%d, %.0f%%))\n", matched, 100**maxRegress, *allocSlack, 100**allocFrac)
	return nil
}

func readReport(path string) (*engbench.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep engbench.Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("%s contains no measurements", path)
	}
	return &rep, nil
}
