package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"lcshortcut/internal/engbench"
)

// writeReport serializes a report into dir and returns its path.
func writeReport(t *testing.T, dir, name string, rep *engbench.Report) string {
	t.Helper()
	if rep.GoVersion == "" {
		rep.GoVersion = runtime.Version()
	}
	if rep.GoMaxProcs == 0 {
		rep.GoMaxProcs = runtime.GOMAXPROCS(0)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func measurement(scenario, engine string, nsPerOp, allocs int64) engbench.Measurement {
	return engbench.Measurement{
		Scenario: scenario, Engine: engine, Iters: 1,
		NsPerOp: nsPerOp, AllocsPerOp: allocs, SimRounds: 10, SimMessages: 100,
	}
}

// TestBenchdiffGate drives the regression gate over crafted baseline and
// candidate reports: pass within budget, fail on ns/op regression, fail on
// steady-state alloc increase, tolerate unmatched scenarios on either side.
func TestBenchdiffGate(t *testing.T) {
	dir := t.TempDir()
	baseline := writeReport(t, dir, "base.json", &engbench.Report{
		Results: []engbench.Measurement{
			measurement("broadcast/grid-n2048", "event-loop", 1_000_000, 2000),
			measurement("tokenring/ring-n1024", "event-loop", 500_000, 1000),
			measurement("mincut/grid-n64", "event-loop", 2_000_000, 5000),
		},
	})
	cases := []struct {
		name    string
		cand    []engbench.Measurement
		wantErr string
		wantOut []string
	}{
		{
			name: "within-budget",
			cand: []engbench.Measurement{
				measurement("broadcast/grid-n2048", "event-loop", 1_200_000, 2000),
				measurement("tokenring/ring-n1024", "event-loop", 450_000, 1010),
				measurement("mincut/grid-n64", "event-loop", 2_100_000, 5000),
			},
			wantOut: []string{"3 measurements within budget"},
		},
		{
			name: "ns-regression",
			cand: []engbench.Measurement{
				measurement("broadcast/grid-n2048", "event-loop", 1_400_000, 2000),
				measurement("tokenring/ring-n1024", "event-loop", 500_000, 1000),
				measurement("mincut/grid-n64", "event-loop", 2_000_000, 5000),
			},
			wantErr: "1 regression(s) against",
			wantOut: []string{"FAIL"},
		},
		{
			name: "alloc-increase",
			cand: []engbench.Measurement{
				measurement("broadcast/grid-n2048", "event-loop", 1_000_000, 2600),
				measurement("tokenring/ring-n1024", "event-loop", 500_000, 1000),
				measurement("mincut/grid-n64", "event-loop", 2_000_000, 5000),
			},
			wantErr: "1 regression(s) against",
			wantOut: []string{"allocs"},
		},
		{
			name: "unmatched-scenarios-tolerated",
			cand: []engbench.Measurement{
				measurement("broadcast/grid-n2048", "event-loop", 1_000_000, 2000),
				measurement("broadcast/newfamily-n512", "event-loop", 700_000, 900),
			},
			wantOut: []string{
				"(no baseline — add one with a full -bench-json run)",
				"(baseline only — not measured by this run)",
				"1 measurements within budget",
			},
		},
		{
			name: "nothing-matches",
			cand: []engbench.Measurement{
				measurement("broadcast/renamed-n2048", "event-loop", 1_000_000, 2000),
			},
			wantErr: "no (scenario, engine) measurement matched",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cand := writeReport(t, dir, tc.name+".json", &engbench.Report{Results: tc.cand})
			var buf strings.Builder
			err := run([]string{"-baseline", baseline, "-candidate", cand}, &buf)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("gate failed: %v\n%s", err, buf.String())
				}
			} else if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("gate error %v, want substring %q", err, tc.wantErr)
			}
			for _, want := range tc.wantOut {
				if !strings.Contains(buf.String(), want) {
					t.Errorf("output missing %q:\n%s", want, buf.String())
				}
			}
		})
	}
}

// TestBenchdiffAllocTolerances pins the two-sided alloc tolerance: the
// relative measurement-noise allowance on big counts and the absolute
// -alloc-slack override.
func TestBenchdiffAllocTolerances(t *testing.T) {
	dir := t.TempDir()
	baseline := writeReport(t, dir, "base.json", &engbench.Report{
		Results: []engbench.Measurement{measurement("broadcast/grid-n2048", "channel", 1_000_000, 1_000_000)},
	})
	within := writeReport(t, dir, "noise.json", &engbench.Report{
		Results: []engbench.Measurement{measurement("broadcast/grid-n2048", "channel", 1_000_000, 1_015_000)},
	})
	var buf strings.Builder
	if err := run([]string{"-baseline", baseline, "-candidate", within, "-alloc-frac", "0.02"}, &buf); err != nil {
		t.Fatalf("1.5%% alloc noise rejected: %v", err)
	}
	over := writeReport(t, dir, "real.json", &engbench.Report{
		Results: []engbench.Measurement{measurement("broadcast/grid-n2048", "channel", 1_000_000, 1_050_000)},
	})
	if err := run([]string{"-baseline", baseline, "-candidate", over, "-alloc-frac", "0.02"}, &buf); err == nil {
		t.Fatal("5% alloc increase passed the 2% tolerance")
	}
	if err := run([]string{"-baseline", baseline, "-candidate", over, "-alloc-slack", "60000"}, &buf); err != nil {
		t.Fatalf("absolute slack not honored: %v", err)
	}
}

// TestBenchdiffHostMismatch pins the recording-environment contract: a
// baseline from a different core count or Go release is refused outright
// (the committed baseline must be re-recorded, not fudged), patch-level Go
// differences are fine, and -allow-host-mismatch downgrades the refusal to
// the comparison with a warning.
func TestBenchdiffHostMismatch(t *testing.T) {
	dir := t.TempDir()
	m := []engbench.Measurement{measurement("broadcast/grid-n2048", "event-loop", 1_000_000, 2000)}
	cand := writeReport(t, dir, "cand.json", &engbench.Report{Results: m})
	otherProcs := writeReport(t, dir, "procs.json", &engbench.Report{
		GoMaxProcs: runtime.GOMAXPROCS(0) + 3, Results: m,
	})
	var buf strings.Builder
	err := run([]string{"-baseline", otherProcs, "-candidate", cand}, &buf)
	if err == nil || !strings.Contains(err.Error(), "recording environments differ") {
		t.Fatalf("gomaxprocs mismatch not refused: %v", err)
	}
	if err := run([]string{"-baseline", otherProcs, "-candidate", cand, "-allow-host-mismatch"}, &buf); err != nil {
		t.Fatalf("-allow-host-mismatch did not override the refusal: %v", err)
	}
	otherGo := writeReport(t, dir, "gover.json", &engbench.Report{
		GoVersion: "go987.654.3", Results: m,
	})
	if err := run([]string{"-baseline", otherGo, "-candidate", cand}, &buf); err == nil || !strings.Contains(err.Error(), "recording environments differ") {
		t.Fatalf("go release mismatch not refused: %v", err)
	}
	patch := writeReport(t, dir, "patch.json", &engbench.Report{
		GoVersion: goMinor(runtime.Version()) + ".999", Results: m,
	})
	if err := run([]string{"-baseline", patch, "-candidate", cand}, &buf); err != nil {
		t.Fatalf("patch-level go difference refused: %v", err)
	}
}

func TestGoMinor(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"go1.24.3", "go1.24"},
		{"go1.24", "go1.24"},
		{"go1.25rc1", "go1.25rc1"},
		{"devel +abc123", "devel +abc123"},
	} {
		if got := goMinor(tc.in); got != tc.want {
			t.Errorf("goMinor(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestBenchdiffRequireFaster drives the baseline-free scaling gate: pass
// when the fast engine beats the slow one on every qualifying scenario,
// fail on a slower row, fail when a qualifying scenario is missing the fast
// engine's measurement, and ignore scenarios below -min-n.
func TestBenchdiffRequireFaster(t *testing.T) {
	dir := t.TempDir()
	gate := []string{"-require-faster", "sharded:event-loop", "-min-n", "100000"}
	cases := []struct {
		name    string
		cand    []engbench.Measurement
		wantErr string
		wantOut string
	}{
		{
			name: "faster-passes",
			cand: []engbench.Measurement{
				measurement("broadcast/ba-n1000000", "event-loop", 4_000_000, 0),
				measurement("broadcast/ba-n1000000", "sharded", 1_500_000, 0),
				// Below min-n: sharded slower here must not fail the gate.
				measurement("broadcast/grid-n2048", "event-loop", 1_000, 0),
				measurement("broadcast/grid-n2048", "sharded", 2_000, 0),
			},
			wantOut: "sharded faster than event-loop on all 1 scenario(s)",
		},
		{
			name: "slower-fails",
			cand: []engbench.Measurement{
				measurement("broadcast/ba-n1000000", "event-loop", 1_000_000, 0),
				measurement("broadcast/ba-n1000000", "sharded", 1_200_000, 0),
			},
			wantErr: "1 scenario(s) where sharded does not beat event-loop",
		},
		{
			name: "missing-row-fails",
			cand: []engbench.Measurement{
				measurement("broadcast/ba-n1000000", "event-loop", 1_000_000, 0),
			},
			wantErr: "1 scenario(s) where sharded does not beat event-loop",
			wantOut: "missing sharded",
		},
		{
			name: "nothing-qualifies",
			cand: []engbench.Measurement{
				measurement("broadcast/grid-n2048", "event-loop", 1_000, 0),
				measurement("broadcast/grid-n2048", "sharded", 500, 0),
			},
			wantErr: "no candidate scenario has >= 100000 nodes",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cand := writeReport(t, dir, tc.name+".json", &engbench.Report{Results: tc.cand})
			var buf strings.Builder
			err := run(append([]string{"-candidate", cand}, gate...), &buf)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("gate failed: %v\n%s", err, buf.String())
				}
			} else if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("gate error %v, want substring %q\n%s", err, tc.wantErr, buf.String())
			}
			if tc.wantOut != "" && !strings.Contains(buf.String(), tc.wantOut) {
				t.Errorf("output missing %q:\n%s", tc.wantOut, buf.String())
			}
		})
	}
	// A malformed engine pair is a usage error, independent of the reports.
	cand := writeReport(t, dir, "pair.json", &engbench.Report{
		Results: []engbench.Measurement{measurement("broadcast/ba-n1000000", "sharded", 1, 0)},
	})
	var buf strings.Builder
	if err := run([]string{"-candidate", cand, "-require-faster", "sharded"}, &buf); err == nil || !strings.Contains(err.Error(), "fast:slow") {
		t.Fatalf("malformed -require-faster pair not rejected: %v", err)
	}
}

func TestBenchdiffErrorPaths(t *testing.T) {
	dir := t.TempDir()
	good := writeReport(t, dir, "good.json", &engbench.Report{
		Results: []engbench.Measurement{measurement("tokenring/ring-n1024", "event-loop", 1, 1)},
	})
	malformed := filepath.Join(dir, "broken.json")
	if err := os.WriteFile(malformed, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	empty := writeReport(t, dir, "empty.json", &engbench.Report{})
	cases := []struct {
		name    string
		args    []string
		wantSub string
	}{
		{"bad-flag", []string{"-nosuchflag"}, "invalid arguments"},
		{"stray-args", []string{"extra"}, "unexpected arguments"},
		{"missing-candidate", []string{"-baseline", good}, "-candidate is required"},
		{"missing-file", []string{"-baseline", good, "-candidate", filepath.Join(dir, "nope.json")}, "no such file"},
		{"malformed-json", []string{"-baseline", good, "-candidate", malformed}, "decoding"},
		{"empty-report", []string{"-baseline", good, "-candidate", empty}, "contains no measurements"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf strings.Builder
			err := run(tc.args, &buf)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("run(%v) error %q, want substring %q", tc.args, err, tc.wantSub)
			}
		})
	}
}
