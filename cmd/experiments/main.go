// Command experiments regenerates every experiment table (E1-E9, F1) from
// EXPERIMENTS.md and prints them to stdout. Pass experiment IDs to run a
// subset, e.g.:
//
//	experiments            # run everything
//	experiments E4 E7 F1   # run a subset
package main

import (
	"fmt"
	"os"
	"strings"

	"lcshortcut/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fns := map[string]func() (*experiments.Table, error){
		"E1": experiments.E1TreeRouting,
		"E2": experiments.E2CoreSlow,
		"E3": experiments.E3CoreFast,
		"E4": experiments.E4FindShortcut,
		"E5": experiments.E5Genus,
		"E6": experiments.E6PartOps,
		"E7": experiments.E7MST,
		"E8": experiments.E8Doubling,
		"E9": experiments.E9Motivation,
		"F1": experiments.F1RenderBlocks,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "F1"}
	want := order
	if len(args) > 0 {
		want = nil
		for _, a := range args {
			id := strings.ToUpper(a)
			if _, ok := fns[id]; !ok {
				return fmt.Errorf("unknown experiment %q (have %s)", a, strings.Join(order, " "))
			}
			want = append(want, id)
		}
	}
	for _, id := range want {
		tbl, err := fns[id]()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(tbl.Format())
	}
	return nil
}
