// Command experiments is the front end of the registry-driven experiment
// harness: it lists, filters and regenerates the paper-reproduction tables
// (E1-E9, F1, the scenario sweeps S1/S2 and the min-cut sweep M1)
// concurrently, and emits them as aligned text, machine-readable JSON, Go
// benchmark-format lines, or the EXPERIMENTS.md document.
//
//	experiments                  # run everything, print tables
//	experiments E4 E7 F1         # run a subset
//	experiments -list            # show the registry (no runs)
//	experiments -list-scenarios  # show the graph-scenario registry feeding it
//	experiments -json            # machine-readable results on stdout
//	experiments -bench           # benchstat-compatible lines on stdout
//	experiments -short -workers 4   # trimmed grids on 4 workers (CI smoke)
//	experiments -write-docs EXPERIMENTS.md   # regenerate the docs from live runs
//	experiments -bench-json BENCH_engine.json   # engine microbenchmarks only
//	experiments -bench-json out.json -bench-filter 'broadcast/ba-n1000000'  # one scenario, Heavy included
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strings"
	"time"

	"lcshortcut/internal/engbench"
	"lcshortcut/internal/experiments"
	"lcshortcut/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		list        = fs.Bool("list", false, "list registered experiments and exit")
		listScen    = fs.Bool("list-scenarios", false, "list the scenario registry feeding the experiments and benchmarks, then exit")
		jsonOut     = fs.Bool("json", false, "emit results as JSON")
		benchOut    = fs.Bool("bench", false, "emit results as Go benchmark-format lines")
		short       = fs.Bool("short", false, "run trimmed smoke-sized parameter grids")
		workers     = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		writeDocs   = fs.String("write-docs", "", "regenerate the given EXPERIMENTS.md `path` from this run")
		benchJSON   = fs.String("bench-json", "", "run the engine microbenchmarks and write the report to `path`, skipping the experiments")
		benchFilter = fs.String("bench-filter", "", "with -bench-json, measure only scenarios whose name matches this `regexp` (an explicit filter also runs matching Heavy scenarios in -short mode)")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: experiments [flags] [ID ...]\n\nRegenerates the paper-reproduction tables. IDs filter the run (see -list).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		// The FlagSet already reported the problem and usage on stderr.
		return fmt.Errorf("invalid arguments")
	}
	if *listScen {
		if len(fs.Args()) > 0 {
			return fmt.Errorf("-list-scenarios lists the whole registry; drop the arguments %v", fs.Args())
		}
		for _, s := range scenario.All() {
			fmt.Fprintf(out, "%-12s  %-30s  %s\n", s.Name, strings.Join(s.Tags, ","), s.Description)
		}
		return nil
	}
	if *benchJSON != "" {
		if len(fs.Args()) > 0 {
			return fmt.Errorf("-bench-json runs the fixed engine scenario suite; drop the arguments %v", fs.Args())
		}
		return writeBenchJSON(*benchJSON, *short, *benchFilter)
	}
	if *benchFilter != "" {
		return fmt.Errorf("-bench-filter only applies with -bench-json")
	}
	exps, err := experiments.Select(fs.Args())
	if err != nil {
		return err
	}
	// EXPERIMENTS.md documents the whole registry; a filtered -write-docs
	// would silently drop every unselected section.
	if *writeDocs != "" && len(fs.Args()) > 0 {
		return fmt.Errorf("-write-docs regenerates the full document; drop the ID filter %v", fs.Args())
	}
	if *list {
		for _, e := range exps {
			fmt.Fprintf(out, "%-3s  %-28s  %s\n", e.ID, e.Ref, e.Title)
		}
		return nil
	}
	results, err := experiments.Run(exps, experiments.Options{Workers: *workers, Short: *short})
	if err != nil {
		return err
	}
	switch {
	case *jsonOut:
		if err := experiments.WriteJSON(out, results); err != nil {
			return err
		}
	case *benchOut:
		if err := experiments.WriteBench(out, results); err != nil {
			return err
		}
	default:
		if *writeDocs == "" {
			for _, r := range results {
				fmt.Fprintln(out, r.Table().Format())
			}
		}
	}
	if *writeDocs != "" {
		f, err := os.Create(*writeDocs)
		if err != nil {
			return err
		}
		if err := experiments.WriteDocs(f, results); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "experiments: wrote %s\n", *writeDocs)
	}
	var violated []string
	for _, r := range results {
		if len(r.Violations) > 0 {
			violated = append(violated, r.ID)
		}
	}
	if len(violated) > 0 {
		return fmt.Errorf("bound violations in %s", strings.Join(violated, ", "))
	}
	return nil
}

// writeBenchJSON runs the engine microbenchmark suite (internal/engbench) on
// every engine each scenario declares and records the measurements — the
// repository's engine perf trajectory — at path. Short mode runs each light
// scenario twice per engine and skips the heavy ones (the CI bench gate; two
// iterations keep single-run scheduler noise out of the regression
// comparison); otherwise each measurement lasts at least a second. A filter
// regexp narrows the suite by scenario name — and since naming a scenario is
// an explicit request to run it, a filtered run measures matching Heavy
// scenarios even in short mode (the nightly large-n job measures exactly the
// million-node flood this way).
func writeBenchJSON(path string, short bool, filter string) error {
	minIters, minDur := 3, time.Second
	if short {
		minIters, minDur = 2, 0
	}
	suite := engbench.Scenarios()
	skipHeavy := short
	if filter != "" {
		re, err := regexp.Compile(filter)
		if err != nil {
			return fmt.Errorf("-bench-filter: %w", err)
		}
		matched := suite[:0]
		for _, sc := range suite {
			if re.MatchString(sc.Name) {
				matched = append(matched, sc)
			}
		}
		if len(matched) == 0 {
			return fmt.Errorf("-bench-filter %q matches no scenario", filter)
		}
		suite, skipHeavy = matched, false
	}
	rep, err := engbench.MeasureSuite(suite, minIters, minDur, skipHeavy)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	for _, m := range rep.Results {
		fmt.Fprintf(os.Stderr, "%-22s %-10s %12d ns/op %8d allocs/op\n", m.Scenario, m.Engine, m.NsPerOp, m.AllocsPerOp)
	}
	fmt.Fprintf(os.Stderr, "experiments: wrote %s\n", path)
	return nil
}
