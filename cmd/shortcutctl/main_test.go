package main

import (
	"strings"
	"testing"
)

// TestRunGolden pins shortcutctl's stdout for representative flag
// combinations — every run is deterministic (fixed seeds throughout), so
// full-output comparisons are stable.
func TestRunGolden(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{
			name: "central-columns",
			args: []string{"-graph", "grid:8x8", "-partition", "columns"},
			want: "graph: n=64 m=112 diameter<=28  partition: N=8 maxPartDiam=7  witness c*=7\n" +
				"FindShortcut finished in 1 iterations (good per iter: [8])\n" +
				"quality: congestion=7 (shortcut-only 7)  block=1  dilation=14  (Lemma 1 bound 29)\n",
		},
		{
			name: "auto-doubling-ring",
			args: []string{"-graph", "ring:12", "-partition", "voronoi:3", "-auto"},
			want: "graph: n=12 m=12 diameter<=12  partition: N=3 maxPartDiam=5  witness c*=2\n" +
				"doubling settled at est=1 after 0 failed probes\n" +
				"quality: congestion=2 (shortcut-only 2)  block=1  dilation=6  (Lemma 1 bound 13)\n",
		},
		{
			name: "dist-protocol",
			args: []string{"-graph", "grid:6x6", "-partition", "voronoi:4", "-mode", "dist"},
			want: "graph: n=36 m=60 diameter<=20  partition: N=4 maxPartDiam=6  witness c*=4\n" +
				"distributed run: 826 CONGEST rounds, 3185 messages, 1 iterations\n" +
				"quality: congestion=4 (shortcut-only 4)  block=1  dilation=10  (Lemma 1 bound 21)\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf strings.Builder
			if err := run(tc.args, &buf); err != nil {
				t.Fatalf("run(%v) = %v", tc.args, err)
			}
			if buf.String() != tc.want {
				t.Errorf("run(%v) stdout:\n%s\nwant:\n%s", tc.args, buf.String(), tc.want)
			}
		})
	}
}

// TestRunRender checks the Figure 1 block rendering path on a snake
// partition (whole-grid coverage renders a solid block).
func TestRunRender(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-graph", "grid:9x9", "-partition", "snake:1", "-render", "0"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"part 0 decomposes into 1 block components:",
		"a a a a a a a a a",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

// TestRunErrorPaths checks that every malformed invocation or infeasible run
// fails with a non-nil error (the process exit-1 path), naming the case.
func TestRunErrorPaths(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantSub string
	}{
		{"bad-flag", []string{"-nosuchflag"}, "invalid arguments"},
		{"stray-args", []string{"grid:4x4"}, "unexpected arguments"},
		{"bad-graph-spec", []string{"-graph", "dodecahedron:5"}, "unknown graph spec"},
		{"malformed-grid-dims", []string{"-graph", "grid:axb"}, "bad graph spec"},
		{"bad-partition-spec", []string{"-graph", "grid:4x4", "-partition", "mystery:2"}, "unknown partition spec"},
		{"columns-needs-grid", []string{"-graph", "ring:8", "-partition", "columns"}, "columns partition needs a grid"},
		{"bad-mode", []string{"-graph", "grid:4x4", "-partition", "columns", "-mode", "quantum"}, "unknown mode"},
		{"render-needs-grid", []string{"-graph", "ring:8", "-partition", "voronoi:2", "-render", "0"}, "-render needs a grid-family graph"},
		{"dist-infeasible-params", []string{"-graph", "grid:16x16", "-partition", "snake:4", "-mode", "dist", "-c", "1"}, "distributed FindShortcut failed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf strings.Builder
			err := run(tc.args, &buf)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("run(%v) error %q, want substring %q", tc.args, err, tc.wantSub)
			}
		})
	}
}

// TestMincutSubcommand drives the mincut subcommand in both modes and pins
// the deterministic report lines; the -eps bound must pass on the exact
// ratio these instances achieve.
func TestMincutSubcommand(t *testing.T) {
	t.Run("dist", func(t *testing.T) {
		var buf strings.Builder
		err := runMincut([]string{"-graph", "grid:6x6", "-trees", "2", "-eps", "0.25"}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		for _, want := range []string{
			"graph: n=36 m=60  packing: 2 trees (canonical strategy)",
			"certified cut=2",
			"witness: cut=2,",
			"exact: 2 (Stoer–Wagner)  ratio=1.000",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("dist output missing %q:\n%s", want, out)
			}
		}
	})
	t.Run("central", func(t *testing.T) {
		var buf strings.Builder
		if err := runMincut([]string{"-graph", "ring:24", "-mode", "central"}, &buf); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		for _, want := range []string{
			"packing: 6 trees (centralized reference)",
			"witness: cut=2, 1-respecting tree 0 at edge 0 (|S|=23)",
			"exact: 2 (Stoer–Wagner)  ratio=1.000",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("central output missing %q:\n%s", want, out)
			}
		}
	})
}

func TestMincutSubcommandErrors(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantSub string
	}{
		{"bad-flag", []string{"-nosuchflag"}, "invalid arguments"},
		{"stray-args", []string{"grid:4x4"}, "unexpected arguments"},
		{"bad-graph", []string{"-graph", "mystery:9"}, "unknown graph spec"},
		{"bad-mode", []string{"-graph", "grid:4x4", "-mode", "quantum"}, "unknown mode"},
		{"bad-strategy", []string{"-graph", "grid:4x4", "-strategy", "telepathy"}, "unknown packing strategy"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf strings.Builder
			err := runMincut(tc.args, &buf)
			if err == nil {
				t.Fatalf("runMincut(%v) succeeded, want error containing %q", tc.args, tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("runMincut(%v) error %q, want substring %q", tc.args, err, tc.wantSub)
			}
		})
	}
}
