package main

import (
	"errors"
	"flag"
	"fmt"
	"io"

	"lcshortcut/internal/congest"
	"lcshortcut/internal/elect"
	"lcshortcut/internal/graph"
	"lcshortcut/internal/reliable"
)

// runElect is the elect subcommand: leader election on a CONGEST network with
// an optional fault plan — seeded crash-stop failures, message loss and the
// inbox-reordering adversary. It runs either the flood-max election or the
// Raft-style heartbeat skeleton, reports the survivors' final view, and fails
// when -require-agreement is set and the survivors split.
func runElect(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("shortcutctl elect", flag.ContinueOnError)
	var (
		graphSpec   = fs.String("graph", "grid:12x12", "graph family: grid:WxH | torus:WxH | handled:WxHxG | ring:N | tree:N | er:N,P | lowerbound:MxL | pathpower:N,K")
		protocol    = fs.String("protocol", "flood", "flood (flood-max election) or raft (heartbeat/term skeleton)")
		rounds      = fs.Int("rounds", 0, "simulated rounds (0 = protocol default: 2·diameter+8 for flood, 64 for raft)")
		seed        = fs.Int64("seed", 7, "protocol randomness seed (rank draws, raft timeouts)")
		crashFrac   = fs.Float64("crash-frac", 0, "fault plan: fraction of nodes that crash-stop")
		crashWindow = fs.Int("crash-window", 8, "fault plan: crashes land in rounds [1, window]")
		drop        = fs.Float64("drop", 0, "fault plan: independent per-message loss probability")
		rotate      = fs.Bool("rotate", false, "fault plan: enable the inbox-rotation scheduler adversary")
		faultSeed   = fs.Int64("fault-seed", 1, "fault plan seed (independent of -seed: same faults under any protocol randomness)")
		require     = fs.Bool("require-agreement", false, "exit nonzero unless all surviving nodes agree on the leader")
		rel         = fs.Bool("reliable", false, "run the flood over the per-arc reliable transport (retransmission defeats -drop; crash-stop nodes are excised)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		// The FlagSet already reported the problem and usage on stderr.
		return fmt.Errorf("invalid arguments")
	}
	if len(fs.Args()) > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	g, _, _, _, err := buildGraph(*graphSpec)
	if err != nil {
		return err
	}
	n := g.NumNodes()

	var plan *congest.FaultPlan
	dead := map[graph.NodeID]bool{}
	if *crashFrac > 0 || *drop > 0 || *rotate {
		plan = &congest.FaultPlan{
			Crashes:  congest.RandomCrashes(n, *crashFrac, *crashWindow, -1, *faultSeed),
			DropProb: *drop,
			Seed:     *faultSeed,
		}
		if *rotate {
			plan.Adversary = congest.AdversaryRotate
		}
		for _, cr := range plan.Crashes {
			dead[cr.Node] = true
		}
		fmt.Fprintf(out, "fault plan: %d crashes (frac %g, window %d), drop %g, rotate=%v, seed %d\n",
			len(plan.Crashes), *crashFrac, *crashWindow, *drop, *rotate, *faultSeed)
	}
	skip := func(v graph.NodeID) bool { return dead[v] }
	opts := congest.Options{Seed: *seed, Faults: plan}
	if *rel && *protocol != "flood" {
		return fmt.Errorf("-reliable applies to the flood protocol (for consensus over the transport, use the raft subcommand)")
	}

	switch *protocol {
	case "flood":
		r := *rounds
		if r <= 0 {
			r = 2*g.ApproxDiameter(0) + 8
			if *rel && len(dead) > 0 {
				// Crashes can sever shortcuts in the survivor graph, so the
				// default diameter budget may fall short; n rounds always
				// suffice for a flood to converge per component.
				r = n + 2
			}
		}
		outc := make([]elect.Outcome, n)
		if *rel {
			stats, rstats, err := reliable.Run(g, func(ctx *reliable.Ctx) error {
				return elect.FloodNet(ctx, r, outc)
			}, reliable.Config{}, opts)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "flood-max election over reliable transport: n=%d m=%d, %d logical rounds in %d physical, %d messages, %d retransmits, %d dead arcs\n",
				n, g.NumEdges(), rstats.LogicalRounds, rstats.PhysicalRounds, stats.Messages, rstats.Retransmits, rstats.DeadArcs)
		} else {
			stats, err := congest.Run(g, elect.Flood(r, outc), opts)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "flood-max election: n=%d m=%d, %d rounds simulated, %d messages\n",
				n, g.NumEdges(), stats.Rounds, stats.Messages)
		}
		leader, ok := elect.Agreed(outc, skip)
		if !ok {
			fmt.Fprintf(out, "survivors SPLIT: no unanimous leader among %d live nodes\n", n-len(dead))
			if *require {
				return fmt.Errorf("survivors disagree on the leader")
			}
			return nil
		}
		fmt.Fprintf(out, "leader: node %d (rank %d), unanimous among %d live nodes, last belief change at round %d\n",
			leader, outc[leader].Rank, n-len(dead), lastChange(outc, skip))
	case "raft":
		cfg := elect.RaftConfig{Rounds: *rounds}
		outc := make([]elect.RaftOutcome, n)
		stats, err := congest.Run(g, elect.Raft(cfg, outc), opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "raft skeleton: n=%d m=%d, %d rounds simulated, %d messages\n",
			n, g.NumEdges(), stats.Rounds, stats.Messages)
		ref, ok := elect.RaftAgreed(outc, skip)
		if !ok {
			fmt.Fprintf(out, "survivors SPLIT: no unanimous (leader, term) among %d live nodes\n", n-len(dead))
			if *require {
				return fmt.Errorf("survivors disagree on the leader")
			}
			return nil
		}
		elections := 0
		for v, o := range outc {
			if !skip(v) {
				elections += o.Elections
			}
		}
		fmt.Fprintf(out, "leader: node %d at term %d, unanimous among %d live nodes, %d candidacies started\n",
			ref.Leader, ref.Term, n-len(dead), elections)
	default:
		return fmt.Errorf("unknown protocol %q (flood or raft)", *protocol)
	}
	return nil
}

// lastChange returns the latest belief-change round among surviving nodes.
func lastChange(outc []elect.Outcome, skip func(graph.NodeID) bool) int {
	last := 0
	for v, o := range outc {
		if !skip(v) && o.LastChange > last {
			last = o.LastChange
		}
	}
	return last
}
