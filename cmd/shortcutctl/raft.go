package main

import (
	"errors"
	"flag"
	"fmt"
	"io"

	"lcshortcut/internal/congest"
	"lcshortcut/internal/elect"
	"lcshortcut/internal/graph"
	"lcshortcut/internal/reliable"
)

// runRaft is the raft subcommand: the committing Raft consensus protocol over
// the per-arc reliable transport, under an optional crash/loss fault plan.
// The leader replicates -entries log entries; the run reports the committed
// prefix per survivor group and always checks commit safety. With
// -require-commit the exit status additionally demands liveness: every node
// in the surviving quorum component must commit the full log.
func runRaft(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("shortcutctl raft", flag.ContinueOnError)
	var (
		graphSpec   = fs.String("graph", "grid:8x8", "graph family: grid:WxH | torus:WxH | handled:WxHxG | ring:N | tree:N | er:N,P | lowerbound:MxL | pathpower:N,K")
		entries     = fs.Int("entries", 4, "log entries the elected leader drives to commit")
		seed        = fs.Int64("seed", 7, "protocol randomness seed (election timeouts)")
		crashFrac   = fs.Float64("crash-frac", 0, "fault plan: fraction of nodes that crash-stop")
		crashWindow = fs.Int("crash-window", 30, "fault plan: crashes land in physical rounds [1, window]")
		drop        = fs.Float64("drop", 0, "fault plan: independent per-message loss probability (the transport retransmits through it)")
		faultSeed   = fs.Int64("fault-seed", 1, "fault plan seed (independent of -seed)")
		require     = fs.Bool("require-commit", false, "exit nonzero unless the surviving quorum component commits all -entries entries")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		// The FlagSet already reported the problem and usage on stderr.
		return fmt.Errorf("invalid arguments")
	}
	if len(fs.Args()) > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	if *entries < 1 {
		return fmt.Errorf("-entries must be at least 1")
	}
	g, _, _, _, err := buildGraph(*graphSpec)
	if err != nil {
		return err
	}
	n := g.NumNodes()

	var plan *congest.FaultPlan
	dead := map[graph.NodeID]bool{}
	if *crashFrac > 0 || *drop > 0 {
		plan = &congest.FaultPlan{
			Crashes:  congest.RandomCrashes(n, *crashFrac, *crashWindow, -1, *faultSeed),
			DropProb: *drop,
			Seed:     *faultSeed,
		}
		for _, cr := range plan.Crashes {
			dead[cr.Node] = true
		}
		fmt.Fprintf(out, "fault plan: %d crashes (frac %g, window %d), drop %g, seed %d\n",
			len(plan.Crashes), *crashFrac, *crashWindow, *drop, *faultSeed)
	}
	skip := func(v graph.NodeID) bool { return dead[v] }

	cfg := elect.RaftLogConfig{Entries: *entries}.TunedFor(g.ApproxDiameter(0))
	outc := make([]elect.RaftLogOutcome, n)
	stats, rstats, err := reliable.Run(g, func(ctx *reliable.Ctx) error {
		return elect.RaftLogNet(ctx, cfg, outc)
	}, reliable.Config{}, congest.Options{Seed: *seed, Faults: plan})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "raft: n=%d m=%d, %d logical rounds in %d physical, %d messages, %d retransmits, %d dead arcs\n",
		n, g.NumEdges(), rstats.LogicalRounds, rstats.PhysicalRounds, stats.Messages, rstats.Retransmits, rstats.DeadArcs)

	// Safety is non-negotiable: conflicting commits are a protocol bug, not a
	// fault outcome, so they fail the run regardless of -require-commit.
	if err := elect.RaftLogConsistent(outc, skip); err != nil {
		return fmt.Errorf("commit safety violated: %w", err)
	}

	quorum := raftQuorumComponent(g, dead)
	elections, minCommit := 0, -1
	for v, o := range outc {
		if skip(v) {
			continue
		}
		elections += o.Elections
	}
	for _, v := range quorum {
		if minCommit < 0 || outc[v].Commit < minCommit {
			minCommit = outc[v].Commit
		}
	}
	switch {
	case len(quorum) == 0:
		fmt.Fprintf(out, "no surviving component holds a quorum (%d/%d nodes needed): nothing may commit\n", n/2+1, n)
	default:
		leader := outc[quorum[0]].Leader
		fmt.Fprintf(out, "quorum component: %d nodes, leader %d at term %d, committed %d/%d entries (min over component), %d candidacies started\n",
			len(quorum), leader, outc[quorum[0]].Term, minCommit, *entries, elections)
	}
	fmt.Fprintf(out, "commit safety: ok (%d survivors, no conflicting commits)\n", n-len(dead))

	if *require {
		if len(quorum) == 0 {
			return fmt.Errorf("-require-commit: no surviving quorum component")
		}
		if minCommit < *entries {
			return fmt.Errorf("-require-commit: quorum component committed only %d/%d entries", minCommit, *entries)
		}
	}
	return nil
}

// raftQuorumComponent returns the surviving connected component holding at
// least a quorum of the original n nodes, nil if none does.
func raftQuorumComponent(g *graph.Graph, dead map[graph.NodeID]bool) []graph.NodeID {
	n := g.NumNodes()
	seen := make([]bool, n)
	for s := 0; s < n; s++ {
		if seen[s] || dead[s] {
			continue
		}
		comp := []graph.NodeID{s}
		seen[s] = true
		for i := 0; i < len(comp); i++ {
			to, _ := g.Arcs(comp[i])
			for _, w := range to {
				if !seen[w] && !dead[int(w)] {
					seen[w] = true
					comp = append(comp, int(w))
				}
			}
		}
		if len(comp) >= n/2+1 {
			return comp
		}
	}
	return nil
}
