package main

import (
	"errors"
	"flag"
	"fmt"
	"io"

	"lcshortcut/internal/congest"
	"lcshortcut/internal/mincut"
	"lcshortcut/internal/mst"
)

// runMincut is the mincut subcommand: greedy tree packing, 1-respecting cut
// evaluation, and the exact Stoer–Wagner comparison — either the full
// distributed CONGEST protocol (-mode dist, with witness certification and
// round accounting) or the centralized reference (-mode central). A -eps
// bound turns the ratio into an exit status: the command fails when the
// witness cut exceeds (1+ε)·OPT.
func runMincut(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("shortcutctl mincut", flag.ContinueOnError)
	var (
		graphSpec = fs.String("graph", "grid:12x12", "graph family: grid:WxH | torus:WxH | handled:WxHxG | ring:N | tree:N | er:N,P | lowerbound:MxL | pathpower:N,K")
		trees     = fs.Int("trees", 0, "packed spanning trees (0 = ceil(log2 n) + 1)")
		mode      = fs.String("mode", "dist", "dist (full CONGEST protocol) or central (reference packer)")
		strategy  = fs.String("strategy", "canonical", "packing MST communication: canonical | shortcut | noshortcut (dist mode)")
		seed      = fs.Int64("seed", 7, "shared-randomness seed (dist mode)")
		eps       = fs.Float64("eps", 0, "fail when cut > (1+eps)·exact (0 disables the bound check)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		// The FlagSet already reported the problem and usage on stderr.
		return fmt.Errorf("invalid arguments")
	}
	if len(fs.Args()) > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}
	g, _, _, _, err := buildGraph(*graphSpec)
	if err != nil {
		return err
	}

	var outc *mincut.Outcome
	switch *mode {
	case "dist":
		strat, ok := map[string]mst.Strategy{
			"canonical":  mst.StrategyCanonical,
			"shortcut":   mst.StrategyShortcut,
			"noshortcut": mst.StrategyNoShortcut,
		}[*strategy]
		if !ok {
			return fmt.Errorf("unknown packing strategy %q", *strategy)
		}
		res, stats, err := mincut.Run(g, 0, *seed, mincut.Config{Trees: *trees, Strategy: strat}, congest.Options{})
		if err != nil {
			return err
		}
		outc = res
		fmt.Fprintf(out, "graph: n=%d m=%d  packing: %d trees (%s strategy)\n",
			g.NumNodes(), g.NumEdges(), res.Trees, *strategy)
		fmt.Fprintf(out, "distributed run: %d CONGEST rounds, %d messages, certified cut=%d\n",
			stats.Rounds, stats.Messages, res.Certified)
	case "central":
		res, err := mincut.Central(g, 0, *trees)
		if err != nil {
			return err
		}
		outc = res
		fmt.Fprintf(out, "graph: n=%d m=%d  packing: %d trees (centralized reference)\n",
			g.NumNodes(), g.NumEdges(), res.Trees)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	if outc.TreeIdx >= 0 {
		fmt.Fprintf(out, "witness: cut=%d, 1-respecting tree %d at edge %d (|S|=%d)\n",
			outc.Cut, outc.TreeIdx, outc.CutEdge, outc.WitnessSize)
	} else {
		fmt.Fprintf(out, "witness: cut=%d, degree cut at vertex %d\n", outc.Cut, outc.MinDegNode)
	}
	exact, _, err := mincut.StoerWagner(g)
	if err != nil {
		return err
	}
	ratio := float64(outc.Cut) / float64(exact)
	fmt.Fprintf(out, "exact: %d (Stoer–Wagner)  ratio=%.3f\n", exact, ratio)
	if *eps > 0 && float64(outc.Cut) > (1+*eps)*float64(exact)+1e-9 {
		return fmt.Errorf("approximation bound violated: cut %d > (1+%g)·%d", outc.Cut, *eps, exact)
	}
	return nil
}
