package main

import (
	"strings"
	"testing"
)

// TestRaftSubcommand smoke-runs the raft subcommand's fault combinations;
// runs are deterministic, so the structural assertions are stable, and
// -require-commit pins the substantive outcome (full-log commit) rather than
// hard-coding leader identities.
func TestRaftSubcommand(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want []string
	}{
		{
			name: "fault-free",
			args: []string{"-graph", "grid:6x6", "-require-commit"},
			want: []string{"raft: n=36 m=60", "committed 4/4 entries", "commit safety: ok"},
		},
		{
			name: "more-entries",
			args: []string{"-graph", "ring:16", "-entries", "7", "-require-commit"},
			want: []string{"raft: n=16 m=16", "committed 7/7 entries"},
		},
		{
			name: "crashy",
			args: []string{"-graph", "grid:6x6", "-crash-frac", "0.15", "-require-commit"},
			want: []string{"fault plan:", "dead arcs", "committed 4/4 entries", "commit safety: ok"},
		},
		{
			name: "crashy-lossy",
			args: []string{"-graph", "grid:6x6", "-crash-frac", "0.15", "-drop", "0.3", "-require-commit"},
			want: []string{"drop 0.3", "retransmits", "committed 4/4 entries"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf strings.Builder
			if err := runRaft(tc.args, &buf); err != nil {
				t.Fatalf("runRaft(%v) = %v\noutput:\n%s", tc.args, err, buf.String())
			}
			for _, want := range tc.want {
				if !strings.Contains(buf.String(), want) {
					t.Errorf("runRaft(%v) output missing %q:\n%s", tc.args, want, buf.String())
				}
			}
		})
	}
}

// TestRaftSubcommandErrors covers the failure paths: bad graph and flags,
// stray arguments, and -require-commit when crashes destroy the quorum.
func TestRaftSubcommandErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"bad-graph", []string{"-graph", "klein:3x3"}},
		{"stray-args", []string{"-graph", "grid:4x4", "extra"}},
		{"bad-entries", []string{"-entries", "0"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := runRaft(tc.args, &strings.Builder{}); err == nil {
				t.Errorf("runRaft(%v) succeeded, want error", tc.args)
			}
		})
	}
	// Crashing most of a ring leaves no component with a quorum of the
	// original n; -require-commit must then fail while safety still holds.
	args := []string{"-graph", "ring:32", "-crash-frac", "0.6", "-crash-window", "3", "-require-commit"}
	var buf strings.Builder
	err := runRaft(args, &buf)
	if err == nil {
		t.Skipf("seeded crash schedule left a committing quorum; output:\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "-require-commit") {
		t.Errorf("unexpected error %v", err)
	}
}
