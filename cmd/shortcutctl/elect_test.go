package main

import (
	"strings"
	"testing"
)

// TestElectSubcommand smoke-runs the elect subcommand's protocol and fault
// combinations; runs are deterministic, so the structural assertions are
// stable (exact leader identity is pinned by the unanimity requirement, not
// by hard-coding rank draws).
func TestElectSubcommand(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want []string
	}{
		{
			name: "flood-fault-free",
			args: []string{"-graph", "grid:8x8", "-require-agreement"},
			want: []string{"flood-max election: n=64 m=112", "unanimous among 64 live nodes"},
		},
		{
			name: "raft-fault-free",
			args: []string{"-graph", "grid:6x6", "-protocol", "raft", "-rounds", "60", "-require-agreement"},
			want: []string{"raft skeleton: n=36 m=60", "at term 1", "unanimous among 36 live nodes"},
		},
		{
			name: "flood-faulty",
			args: []string{"-graph", "er:120,0.08", "-crash-frac", "0.2", "-drop", "0.1", "-rotate"},
			want: []string{"fault plan:", "drop 0.1, rotate=true", "flood-max election: n=120"},
		},
		{
			name: "raft-crashy",
			args: []string{"-graph", "grid:6x6", "-protocol", "raft", "-rounds", "80", "-crash-frac", "0.1", "-crash-window", "30"},
			want: []string{"fault plan:", "raft skeleton: n=36"},
		},
		{
			name: "flood-reliable-lossy",
			args: []string{"-graph", "grid:6x6", "-drop", "0.3", "-reliable", "-require-agreement"},
			want: []string{"over reliable transport", "retransmits", "unanimous among 36 live nodes"},
		},
		{
			name: "flood-reliable-crashy",
			args: []string{"-graph", "grid:8x8", "-crash-frac", "0.1", "-drop", "0.2", "-reliable"},
			want: []string{"fault plan:", "over reliable transport", "dead arcs"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf strings.Builder
			if err := runElect(tc.args, &buf); err != nil {
				t.Fatalf("runElect(%v) = %v\noutput:\n%s", tc.args, err, buf.String())
			}
			for _, want := range tc.want {
				if !strings.Contains(buf.String(), want) {
					t.Errorf("runElect(%v) output missing %q:\n%s", tc.args, want, buf.String())
				}
			}
		})
	}
}

// TestElectSubcommandErrors covers the failure paths: bad protocol, bad
// graph, stray arguments, and -require-agreement on a partitioned network
// (two disconnected halves cannot agree ... but generators only build
// connected graphs, so the deterministic split comes from crashing a ring
// apart).
func TestElectSubcommandErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown-protocol", []string{"-protocol", "paxos"}},
		{"bad-graph", []string{"-graph", "klein:3x3"}},
		{"stray-args", []string{"-graph", "grid:4x4", "extra"}},
		{"reliable-raft", []string{"-graph", "grid:4x4", "-protocol", "raft", "-reliable"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := runElect(tc.args, &strings.Builder{}); err == nil {
				t.Errorf("runElect(%v) succeeded, want error", tc.args)
			}
		})
	}
	// A ring with 30% crashes fragments into arcs whose survivors keep
	// different maxima; -require-agreement must then fail.
	args := []string{"-graph", "ring:64", "-crash-frac", "0.3", "-crash-window", "3", "-require-agreement"}
	var buf strings.Builder
	err := runElect(args, &buf)
	if err == nil {
		if !strings.Contains(buf.String(), "unanimous") {
			t.Errorf("expected either a split error or unanimity, got neither:\n%s", buf.String())
		}
		t.Skipf("seeded crash schedule left the ring connected; output:\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "disagree") {
		t.Errorf("unexpected error %v", err)
	}
}
