// Command shortcutctl builds a graph and partition, constructs a
// tree-restricted shortcut (centralized reference or the full distributed
// protocol), and reports its quality parameters. The mincut subcommand runs
// the tree-packing minimum-cut application instead (see mincut.go); the
// elect subcommand runs leader election under an optional fault plan
// (see elect.go); the raft subcommand runs the committing Raft consensus
// protocol over the reliable transport (see raft.go).
//
// Examples:
//
//	shortcutctl -graph grid:16x16 -partition voronoi:10
//	shortcutctl -graph torus:12x12 -partition snake:2 -mode dist
//	shortcutctl -graph handled:16x16x3 -partition voronoi:8 -auto
//	shortcutctl -graph grid:9x9 -partition snake:1 -render 0
//	shortcutctl mincut -graph grid:8x8 -trees 3 -mode dist
//	shortcutctl elect -graph er:200,0.05 -crash-frac 0.2 -drop 0.1 -rotate
//	shortcutctl elect -graph grid:8x8 -drop 0.3 -reliable -require-agreement
//	shortcutctl raft -graph grid:8x8 -entries 4 -crash-frac 0.15 -drop 0.3 -require-commit
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"lcshortcut/internal/congest"
	"lcshortcut/internal/core"
	"lcshortcut/internal/coredist"
	"lcshortcut/internal/findshort"
	"lcshortcut/internal/gen"
	"lcshortcut/internal/graph"
	"lcshortcut/internal/partition"
	"lcshortcut/internal/tree"
)

func main() {
	args := os.Args[1:]
	var err error
	if len(args) > 0 && args[0] == "mincut" {
		err = runMincut(args[1:], os.Stdout)
	} else if len(args) > 0 && args[0] == "elect" {
		err = runElect(args[1:], os.Stdout)
	} else if len(args) > 0 && args[0] == "raft" {
		err = runRaft(args[1:], os.Stdout)
	} else {
		err = run(args, os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "shortcutctl: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("shortcutctl", flag.ContinueOnError)
	var (
		graphSpec   = fs.String("graph", "grid:12x12", "graph family: grid:WxH | torus:WxH | handled:WxHxG | ring:N | tree:N | er:N,P | lowerbound:MxL | pathpower:N,K")
		partSpec    = fs.String("partition", "voronoi:6", "partition: voronoi:N | columns | snake:N | combs | singletons | whole | paths (lowerbound only)")
		mode        = fs.String("mode", "central", "central (reference algorithms) or dist (full CONGEST protocol)")
		cFlag       = fs.Int("c", 0, "witness congestion (0 = use canonical witness c*)")
		bFlag       = fs.Int("b", 1, "witness block parameter")
		auto        = fs.Bool("auto", false, "unknown parameters: Appendix A doubling search")
		seed        = fs.Int64("seed", 7, "shared-randomness seed")
		workersFlag = fs.Int("workers", 1, "construction workers for central modes (0 = GOMAXPROCS; the output is identical for every value)")
		render      = fs.Int("render", -1, "render the block decomposition of this part (grids only)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		// The FlagSet already reported the problem and usage on stderr.
		return fmt.Errorf("invalid arguments")
	}
	if len(fs.Args()) > 0 {
		return fmt.Errorf("unexpected arguments %v (subcommands go first: shortcutctl mincut ...)", fs.Args())
	}

	g, w, h, parts, err := buildGraph(*graphSpec)
	if err != nil {
		return err
	}
	p, err := buildPartition(g, w, h, parts, *partSpec)
	if err != nil {
		return err
	}
	if err := p.Validate(g); err != nil {
		return err
	}
	tr := tree.BFSTree(g, 0)
	cStar := core.WitnessCongestion(tr, p)
	c := *cFlag
	if c == 0 {
		c = cStar
	}
	fmt.Fprintf(out, "graph: n=%d m=%d diameter<=%d  partition: N=%d maxPartDiam=%d  witness c*=%d\n",
		g.NumNodes(), g.NumEdges(), tr.Height()*2, p.NumParts(), p.MaxPartDiameter(g), cStar)

	var s *core.Shortcut
	switch {
	case *mode == "central" && *auto:
		ar, err := core.FindShortcutAuto(tr, p, *seed, false, *workersFlag)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "doubling settled at est=%d after %d failed probes\n", ar.EstC, ar.Probes)
		s = ar.S
	case *mode == "central":
		fr, err := core.FindShortcut(tr, p, core.FindConfig{C: c, B: *bFlag, Seed: *seed, Workers: *workersFlag})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "FindShortcut finished in %d iterations (good per iter: %v)\n", fr.Iterations, fr.GoodPerIteration)
		s = fr.S
	case *mode == "dist":
		results, stats, ok, err := findshort.Run(g, p, 0, findshort.Config{C: c, B: *bFlag, Seed: *seed}, congest.Options{})
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("distributed FindShortcut failed (C=%d B=%d too small); try -auto or larger -c", c, *bFlag)
		}
		fmt.Fprintf(out, "distributed run: %d CONGEST rounds, %d messages, %d iterations\n",
			stats.Rounds, stats.Messages, results[0].Iterations)
		states := make([]*coredist.NodeShortcut, len(results))
		for v, r := range results {
			states[v] = r.NS
		}
		s, _, err = coredist.ToShortcut(g, p, states)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	q := s.Measure()
	fmt.Fprintf(out, "quality: congestion=%d (shortcut-only %d)  block=%d  dilation=%d  (Lemma 1 bound %d)\n",
		q.Congestion, s.ShortcutCongestion(), q.BlockParameter, q.Dilation,
		q.BlockParameter*(2*tr.Height()+1))

	if *render >= 0 {
		if w == 0 {
			return fmt.Errorf("-render needs a grid-family graph")
		}
		renderBlocks(out, s, p, w, h, *render)
	}
	return nil
}

func buildGraph(spec string) (g *graph.Graph, w, h, parts int, err error) {
	kind, arg, _ := strings.Cut(spec, ":")
	nums := func(sep string) ([]int, error) {
		fields := strings.Split(arg, sep)
		out := make([]int, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("bad graph spec %q: %w", spec, err)
			}
			out = append(out, v)
		}
		return out, nil
	}
	switch kind {
	case "grid", "torus", "handled", "lowerbound":
		dims, derr := nums("x")
		if derr != nil {
			return nil, 0, 0, 0, derr
		}
		switch {
		case kind == "grid" && len(dims) == 2:
			return gen.Grid(dims[0], dims[1]), dims[0], dims[1], 0, nil
		case kind == "torus" && len(dims) == 2:
			return gen.Torus(dims[0], dims[1]), dims[0], dims[1], 0, nil
		case kind == "handled" && len(dims) == 3:
			return gen.HandledGrid(dims[0], dims[1], dims[2]), dims[0], dims[1], 0, nil
		case kind == "lowerbound" && len(dims) == 2:
			return gen.LowerBound(dims[0], dims[1]), 0, 0, dims[0]*1000 + dims[1], nil
		}
	case "ring", "tree":
		dims, derr := nums(",")
		if derr != nil || len(dims) != 1 {
			return nil, 0, 0, 0, fmt.Errorf("bad graph spec %q", spec)
		}
		if kind == "ring" {
			return gen.Ring(dims[0]), 0, 0, 0, nil
		}
		return gen.RandomTree(dims[0], 1), 0, 0, 0, nil
	case "er":
		fields := strings.Split(arg, ",")
		if len(fields) == 2 {
			n, e1 := strconv.Atoi(fields[0])
			pr, e2 := strconv.ParseFloat(fields[1], 64)
			if e1 == nil && e2 == nil {
				return gen.ErdosRenyi(n, pr, 1), 0, 0, 0, nil
			}
		}
	case "pathpower":
		dims, derr := nums(",")
		if derr == nil && len(dims) == 2 {
			return gen.PathPower(dims[0], dims[1]), 0, 0, 0, nil
		}
	}
	return nil, 0, 0, 0, fmt.Errorf("unknown graph spec %q", spec)
}

func buildPartition(g *graph.Graph, w, h, lbSpec int, spec string) (*partition.Partition, error) {
	kind, arg, _ := strings.Cut(spec, ":")
	num := 0
	if arg != "" {
		v, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("bad partition spec %q: %w", spec, err)
		}
		num = v
	}
	switch kind {
	case "voronoi":
		return partition.Voronoi(g, num, 3), nil
	case "columns":
		if w == 0 {
			return nil, fmt.Errorf("columns partition needs a grid graph")
		}
		return partition.GridColumns(w, h), nil
	case "snake":
		if w == 0 {
			return nil, fmt.Errorf("snake partition needs a grid graph")
		}
		return partition.GridSnake(w, h, num), nil
	case "combs":
		if w == 0 {
			return nil, fmt.Errorf("combs partition needs a grid graph")
		}
		return partition.CombPair(w, h), nil
	case "singletons":
		return partition.Singletons(g.NumNodes()), nil
	case "whole":
		return partition.Whole(g.NumNodes()), nil
	case "paths":
		if lbSpec == 0 {
			return nil, fmt.Errorf("paths partition needs the lowerbound graph")
		}
		return partition.FromParts(g.NumNodes(), gen.LowerBoundPaths(lbSpec/1000, lbSpec%1000))
	}
	return nil, fmt.Errorf("unknown partition spec %q", spec)
}

// renderBlocks prints the Figure 1 style block decomposition of one part.
func renderBlocks(out io.Writer, s *core.Shortcut, p *partition.Partition, w, h, part int) {
	blocks := s.Blocks(part)
	fmt.Fprintf(out, "part %d decomposes into %d block components:\n", part, len(blocks))
	cell := make(map[graph.NodeID]byte)
	for bi, blk := range blocks {
		for _, v := range blk.Nodes {
			cell[v] = byte('a' + bi%26)
		}
	}
	gi := gen.GridIndexer{W: w, H: h}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := gi.Node(x, y)
			switch {
			case cell[v] != 0:
				fmt.Fprintf(out, "%c ", cell[v])
			case p.Part(v) == part:
				fmt.Fprint(out, "# ")
			default:
				fmt.Fprint(out, ". ")
			}
		}
		fmt.Fprintln(out)
	}
}
